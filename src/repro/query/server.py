"""Embedded JSON HTTP API over a query engine — stdlib only.

A :class:`~http.server.ThreadingHTTPServer` front end for
:class:`~repro.query.engine.QueryEngine`, hardened for always-on
serving.  Endpoints:

=========================  ==========================================
``GET /healthz``           liveness: status, version, db fingerprint
``GET /readyz``            readiness: snapshot generation + degraded
                           state (distinct from liveness — see below)
``GET /stats``             engine statistics (index + cache counters)
``GET /manufacturers``     manufacturers present in the database
``GET /metrics/dpm``       per-manufacturer DPM summaries
``GET /metrics/apm``       per-manufacturer APM summaries (Table VII)
``GET /metrics/dpa``       per-manufacturer DPA summaries (Table VI)
``GET|POST /query``        the full typed query surface
=========================  ==========================================

``GET /query`` reads the query from the URL (``?metric=dpm&group_by=
manufacturer&manufacturer=Waymo&month_from=2015-01``; repeat
``manufacturer`` to filter on several); ``POST /query`` takes the
same fields as a JSON object.  The ``/metrics/*`` shortcuts accept
the filter parameters too.

Every response is JSON except ``GET /metrics``, which serves the
process metrics registry in the Prometheus text exposition format.
Errors are structured: 400 carries ``{"error": ...}`` for an invalid
query, 404 for an unknown path, 422 when the database is too thin for
the requested statistic, and any unexpected handler failure is a
**sanitized** 500 — ``{"error": "internal server error"}``, never a
traceback or internal detail on the wire.

**Liveness vs readiness.**  ``/healthz`` answers "is the process up"
and is always 200 while the server runs.  ``/readyz`` answers "should
you send traffic": 200 ``ok`` normally, 200 ``degraded`` when the
last snapshot-swap candidate was quarantined (we still serve, from
the last-good generation), 503 ``draining`` during graceful shutdown.

**Admission control.**  At most ``max_inflight`` requests are handled
concurrently; excess load is shed with a structured
``503 + Retry-After`` instead of queueing without bound.  Each
admitted request gets a ``deadline_s`` budget; blowing it returns a
structured 503 naming the deadline.  ``/healthz``, ``/readyz``, and
the ``/metrics`` exposition are exempt — health probes and scrapes
must work precisely when the server is saturated.

**Consistency.**  Each request captures the live
:class:`~repro.query.snapshot.Snapshot` exactly once and answers
entirely from it, so a hot-swap mid-request can never blend
generations in one response.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Mapping
from urllib.parse import parse_qs, urlsplit

from .. import __version__
from ..errors import InsufficientDataError, QueryError
from ..obs.metrics import (
    HTTP_LATENCY,
    HTTP_REQUESTS,
    INDEX_RECORDS,
    QUERY_CACHE_EVICTIONS,
    QUERY_CACHE_HITS,
    QUERY_CACHE_MISSES,
    QUERY_CACHE_SIZE,
    REQUEST_TIMEOUTS,
    REQUESTS_INFLIGHT,
    REQUESTS_SHED,
    MetricsRegistry,
    default_registry,
)
from ..pipeline.chaos import ServingChaos
from ..pipeline.store import FailureDatabase
from .engine import Query, QueryEngine
from .snapshot import DirectoryWatcher, Snapshot, SnapshotManager

#: Metric families reachable as ``/metrics/<name>`` shortcuts.
METRIC_SHORTCUTS = ("dpm", "apm", "dpa")

#: Routes the request metrics label individually; anything else is
#: folded into ``<unknown>`` so scanners can't explode cardinality.
_KNOWN_ROUTES = frozenset(
    {"/", "/healthz", "/readyz", "/stats", "/manufacturers", "/query",
     "/metrics"} | {f"/metrics/{name}" for name in METRIC_SHORTCUTS})

#: Routes exempt from admission control and deadlines: probes and
#: scrapes must answer precisely when the server is saturated or
#: draining.
_EXEMPT_ROUTES = frozenset({"/healthz", "/readyz", "/metrics"})

#: ``Retry-After`` seconds suggested on shed/drain 503s.
RETRY_AFTER_S = 1


def _query_from_params(params: Mapping[str, list[str]]) -> Query:
    """Build a query from URL parameters (``GET /query`` and the
    ``/metrics/*`` filters)."""
    known = {"metric", "group_by", "manufacturer", "manufacturers",
             "month_from", "month_to", "tag", "category"}
    unknown = sorted(set(params) - known)
    if unknown:
        raise QueryError(
            f"unknown query parameter(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(known))}")
    data: dict[str, Any] = {}
    if "metric" in params:
        data["metric"] = params["metric"][-1]
    for key in ("group_by", "month_from", "month_to", "tag",
                "category"):
        if key in params:
            data[key] = params[key][-1]
    names = list(params.get("manufacturer", []))
    for value in params.get("manufacturers", []):
        names.extend(part.strip() for part in value.split(",")
                     if part.strip())
    if names:
        data["manufacturers"] = tuple(names)
    return Query.from_dict(data)


class _QueryHTTPServer(ThreadingHTTPServer):
    """The HTTP server plus serving state the handler reads.

    Owns admission accounting (in-flight count, drain flag) — the
    handler calls :meth:`try_admit`/:meth:`release` around every
    non-exempt request.
    """

    daemon_threads = True

    # Set by QueryServer right after construction.
    snapshots: SnapshotManager
    metrics: MetricsRegistry
    verbose: bool = False
    max_inflight: int = 0
    deadline_s: float = 0.0
    chaos: ServingChaos | None = None
    http_requests = None
    http_latency = None
    shed_total = None
    timeout_total = None
    inflight_gauge = None

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._admission = threading.Condition()
        self._inflight = 0
        self._draining = False

    # -- admission -----------------------------------------------------

    @property
    def draining(self) -> bool:
        """Whether graceful shutdown has begun."""
        return self._draining

    @property
    def inflight(self) -> int:
        """Requests currently admitted."""
        return self._inflight

    def try_admit(self) -> str | None:
        """Admit one request; returns the rejection reason instead
        when draining or saturated (never blocks)."""
        with self._admission:
            if self._draining:
                return "draining"
            if (self.max_inflight
                    and self._inflight >= self.max_inflight):
                return "overloaded"
            self._inflight += 1
            inflight = self._inflight
        if self.inflight_gauge is not None:
            self.inflight_gauge.set(inflight)
        return None

    def release(self) -> None:
        """Release one admitted request (wakes the drain waiter)."""
        with self._admission:
            self._inflight -= 1
            inflight = self._inflight
            if inflight == 0:
                self._admission.notify_all()
        if self.inflight_gauge is not None:
            self.inflight_gauge.set(inflight)

    def begin_drain(self) -> None:
        """Stop admitting new work (existing requests finish)."""
        with self._admission:
            self._draining = True

    def wait_drained(self, timeout: float) -> bool:
        """Block until in-flight hits zero (or ``timeout`` passes)."""
        deadline = time.monotonic() + timeout
        with self._admission:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._admission.wait(remaining)
        return True


class _Handler(BaseHTTPRequestHandler):
    """Routes one request; serving state lives on the server object."""

    server_version = f"repro-query/{__version__}"
    protocol_version = "HTTP/1.1"
    server: _QueryHTTPServer

    # -- plumbing ------------------------------------------------------

    @property
    def snapshot(self) -> Snapshot:
        """The snapshot captured when this request started — the only
        generation anything in the response may come from."""
        return self._snapshot

    @property
    def engine(self) -> QueryEngine:
        return self._snapshot.engine

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: Any,
                   headers: Mapping[str, str] | None = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send_body(status, "application/json", body,
                        headers=headers)

    def _send_body(self, status: int, content_type: str, body: bytes,
                   headers: Mapping[str, str] | None = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        self._observe(status)

    def _observe(self, status: int) -> None:
        """Record the request into the server's metrics registry."""
        server = self.server
        requests = getattr(server, "http_requests", None)
        if requests is None:
            return
        route = getattr(self, "_route", "<unknown>")
        requests.labels(route, str(status)).inc()
        started = getattr(self, "_started", None)
        if started is not None:
            server.http_latency.labels(route).observe(
                time.perf_counter() - started)

    # -- request lifecycle ---------------------------------------------

    def _begin(self, path: str) -> str:
        """Per-request state reset (handlers are reused across
        keep-alive requests on one connection)."""
        self._started = time.perf_counter()
        self._snapshot = self.server.snapshots.current()
        self._admitted = False
        route = urlsplit(path).path.rstrip("/") or "/"
        self._route = (route if route in _KNOWN_ROUTES
                       else "<unknown>")
        return route

    def _admit(self, route: str) -> bool:
        """Admission control for non-exempt routes.

        Returns whether the request may proceed; a shed request has
        already been answered with a structured ``503 + Retry-After``.
        """
        if route in _EXEMPT_ROUTES:
            return True
        reason = self.server.try_admit()
        if reason is None:
            self._admitted = True
            return True
        if (reason == "overloaded"
                and self.server.shed_total is not None):
            self.server.shed_total.inc()
        self._send_json(
            503,
            {"error": f"server is {reason}; retry later",
             "reason": reason, "retry_after_s": RETRY_AFTER_S},
            headers={"Retry-After": str(RETRY_AFTER_S)})
        return False

    def _finish(self) -> None:
        if self._admitted:
            self._admitted = False
            self.server.release()

    def _deadline_exceeded(self) -> float | None:
        """Elapsed seconds when the admitted request blew its budget
        (``None`` otherwise — including for exempt requests)."""
        deadline = self.server.deadline_s
        if not self._admitted or deadline <= 0:
            return None
        elapsed = time.perf_counter() - self._started
        return elapsed if elapsed > deadline else None

    def _dispatch(self, handler, *args) -> None:
        chaos = self.server.chaos
        if chaos is not None and self._admitted:
            chaos.maybe_slow_query()
        try:
            status, payload = handler(*args)
        except QueryError as exc:
            status, payload = 400, {"error": str(exc)}
        except InsufficientDataError as exc:
            status, payload = 422, {"error": str(exc)}
        except Exception as exc:
            # Sanitized: whatever blew up, the wire sees no detail.
            self.log_error("unhandled error on %s: %r",
                           self._route, exc)
            status, payload = 500, {"error": "internal server error"}
        elapsed = self._deadline_exceeded()
        if elapsed is not None:
            if self.server.timeout_total is not None:
                self.server.timeout_total.inc()
            self._send_json(
                503,
                {"error": f"deadline exceeded: request took "
                          f"{elapsed:.3f}s against a "
                          f"{self.server.deadline_s:.3f}s budget",
                 "reason": "deadline",
                 "retry_after_s": RETRY_AFTER_S},
                headers={"Retry-After": str(RETRY_AFTER_S)})
            return
        self._send_json(status, payload)

    # -- routing -------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        route = self._begin(self.path)
        if not self._admit(route):
            return
        try:
            params = parse_qs(urlsplit(self.path).query)
            if route == "/healthz":
                self._dispatch(self._healthz)
            elif route == "/readyz":
                self._dispatch(self._readyz)
            elif route == "/stats":
                self._dispatch(self._stats)
            elif route == "/manufacturers":
                self._dispatch(self._manufacturers)
            elif route == "/query":
                self._dispatch(self._query_get, params)
            elif route == "/metrics":
                self._metrics_exposition()
            elif route.startswith("/metrics/"):
                self._dispatch(self._metric,
                               route[len("/metrics/"):], params)
            else:
                self._send_json(404, {"error": f"unknown path "
                                               f"{self.path!r}"})
        finally:
            self._finish()

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        route = self._begin(self.path)
        if route != "/query":
            self._send_json(404, {"error": f"unknown path "
                                           f"{self.path!r}"})
            return
        if not self._admit(route):
            return
        try:
            try:
                length = int(self.headers.get("Content-Length", "0"))
                data = json.loads(self.rfile.read(length) or b"{}")
            except (ValueError, json.JSONDecodeError) as exc:
                self._send_json(400, {"error": f"request body is not "
                                               f"valid JSON: {exc}"})
                return
            self._dispatch(self._query_post, data)
        finally:
            self._finish()

    # -- endpoints -----------------------------------------------------

    def _healthz(self) -> tuple[int, Any]:
        """Liveness: the process is up (always 200 while serving)."""
        return 200, {
            "status": "ok",
            "version": __version__,
            "fingerprint": self.engine.fingerprint,
        }

    def _readyz(self) -> tuple[int, Any]:
        """Readiness: should a load balancer send traffic here.

        Reads the *manager*, not the request's captured snapshot —
        readiness describes what the next request would get.
        """
        manager = self.server.snapshots
        stats = manager.stats()
        if self.server.draining:
            status, state = 503, "draining"
        elif stats["degraded"]:
            status, state = 200, "degraded"
        else:
            status, state = 200, "ok"
        return status, {
            "status": state,
            "generation": stats["snapshot"]["generation"],
            "fingerprint": stats["snapshot"]["fingerprint"],
            "quarantined": stats["quarantined"],
            "last_error": stats["last_error"],
        }

    def _stats(self) -> tuple[int, Any]:
        return 200, self.engine.stats()

    def _manufacturers(self) -> tuple[int, Any]:
        return 200, {
            "manufacturers": list(self.engine.index.manufacturers),
        }

    def _query_get(self, params) -> tuple[int, Any]:
        query = _query_from_params(params)
        return 200, self.engine.execute(query).to_dict()

    def _query_post(self, data) -> tuple[int, Any]:
        return 200, self.engine.execute(Query.from_dict(data)).to_dict()

    def _metrics_exposition(self) -> None:
        """``GET /metrics``: the registry as Prometheus text.

        Cache and index levels are *sampled at scrape time* — they are
        gauges owned by the engine, not counters the request path
        maintains — so a scrape always reflects the live state.
        """
        registry: MetricsRegistry = self.server.metrics
        stats = self.engine.stats()
        cache = stats["cache"]
        registry.gauge(
            QUERY_CACHE_HITS, "Query-result LRU hits").set(
            cache["hits"])
        registry.gauge(
            QUERY_CACHE_MISSES, "Query-result LRU misses").set(
            cache["misses"])
        registry.gauge(
            QUERY_CACHE_EVICTIONS, "Query-result LRU evictions").set(
            cache["evictions"])
        registry.gauge(
            QUERY_CACHE_SIZE, "Query-result LRU resident entries").set(
            cache["size"])
        index_g = registry.gauge(
            INDEX_RECORDS, "Records in the served database index",
            ("kind",))
        for kind in ("disengagements", "accidents", "mileage_cells"):
            index_g.labels(kind).set(stats["index"][kind])
        body = registry.render_prometheus().encode("utf-8")
        self._send_body(200, "text/plain; version=0.0.4", body)

    def _metric(self, name: str, params) -> tuple[int, Any]:
        if name not in METRIC_SHORTCUTS:
            return 404, {"error": f"unknown metric endpoint {name!r}; "
                                  f"known: "
                                  f"{', '.join(METRIC_SHORTCUTS)}"}
        if "metric" in params:
            raise QueryError(
                "/metrics/* fixes the metric; drop the 'metric' "
                "parameter or use /query")
        query = _query_from_params({**params, "metric": [name]})
        return 200, self.engine.execute(query).to_dict()


class QueryServer:
    """A running (or startable) HTTP server around one engine.

    Usable blocking (:meth:`serve_forever`) or as a context manager
    that serves from a daemon thread — the test/embedding mode::

        with QueryServer(db, port=0) as server:
            urllib.request.urlopen(server.url + "/healthz")

    Accepts a raw :class:`~repro.pipeline.store.FailureDatabase`, a
    prebuilt :class:`~repro.query.engine.QueryEngine`, or a
    :class:`~repro.query.snapshot.SnapshotManager` (the always-on
    mode: swap snapshots underneath while serving).  ``max_inflight``
    bounds concurrent admitted requests (0 = unbounded);
    ``deadline_s`` is the per-request budget (0 = none);
    ``drain_timeout_s`` caps how long :meth:`shutdown` waits for
    in-flight requests before closing anyway.
    """

    def __init__(self, db: FailureDatabase | QueryEngine
                 | SnapshotManager,
                 host: str = "127.0.0.1", port: int = 8350, *,
                 cache_size: int = 256,
                 verbose: bool = False,
                 registry: MetricsRegistry | None = None,
                 max_inflight: int = 64,
                 deadline_s: float = 10.0,
                 drain_timeout_s: float = 5.0,
                 chaos: ServingChaos | None = None) -> None:
        # The process-global registry by default, so a pipeline run in
        # this process shows up on the same /metrics scrape.
        self.registry = registry or default_registry()
        if isinstance(db, SnapshotManager):
            self.snapshots = db
        else:
            self.snapshots = SnapshotManager(
                db, cache_size=cache_size, registry=self.registry,
                chaos=chaos)
        self.drain_timeout_s = drain_timeout_s
        httpd = _QueryHTTPServer((host, port), _Handler)
        httpd.snapshots = self.snapshots
        httpd.verbose = verbose
        httpd.metrics = self.registry
        httpd.max_inflight = max_inflight
        httpd.deadline_s = deadline_s
        httpd.chaos = chaos
        httpd.http_requests = self.registry.counter(
            HTTP_REQUESTS, "HTTP requests by route and status",
            ("route", "status"))
        httpd.http_latency = self.registry.histogram(
            HTTP_LATENCY, "HTTP request latency by route", ("route",))
        httpd.shed_total = self.registry.counter(
            REQUESTS_SHED,
            "Requests shed by admission control (503 + Retry-After)")
        httpd.timeout_total = self.registry.counter(
            REQUEST_TIMEOUTS,
            "Requests that blew their per-request deadline")
        httpd.inflight_gauge = self.registry.gauge(
            REQUESTS_INFLIGHT, "Requests currently being handled")
        self._httpd = httpd
        self._thread: threading.Thread | None = None
        self._watch_thread: threading.Thread | None = None
        self._watch_stop = threading.Event()

    @property
    def engine(self) -> QueryEngine:
        """The engine of the currently served snapshot."""
        return self.snapshots.engine

    @property
    def host(self) -> str:
        """Bound host."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """Bound port (the real one, also when constructed with 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._httpd.serve_forever()

    def start(self) -> "QueryServer":
        """Serve from a background daemon thread."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-query-server", daemon=True)
        self._thread.start()
        return self

    def watch(self, directory: str | Path,
              interval_s: float = 2.0) -> "QueryServer":
        """Poll ``directory`` for database drops; hot-swap each one.

        New or changed ``*.json`` files are loaded through the
        snapshot manager — a corrupt drop is quarantined (``/readyz``
        goes ``degraded``) and the last-good snapshot keeps serving.
        """
        watcher = DirectoryWatcher(directory)

        def loop() -> None:
            while not self._watch_stop.is_set():
                for path in watcher.poll():
                    try:
                        self.snapshots.load(path)
                    except OSError:
                        continue  # vanished mid-read; next poll
                self._watch_stop.wait(interval_s)

        self._watch_thread = threading.Thread(
            target=loop, name="repro-query-watch", daemon=True)
        self._watch_thread.start()
        return self

    def shutdown(self) -> None:
        """Graceful stop: drain in-flight requests, then close.

        New non-exempt requests are refused (503 ``draining``) the
        moment this is called; existing ones get up to
        ``drain_timeout_s`` to finish before the socket closes.
        """
        self._watch_stop.set()
        if self._watch_thread is not None:
            self._watch_thread.join(timeout=5.0)
            self._watch_thread = None
        self._httpd.begin_drain()
        self._httpd.wait_drained(self.drain_timeout_s)
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def serve(db: FailureDatabase, host: str = "127.0.0.1",
          port: int = 8350, *, cache_size: int = 256,
          verbose: bool = True, max_inflight: int = 64,
          deadline_s: float = 10.0,
          watch: str | Path | None = None,
          watch_interval_s: float = 2.0) -> None:
    """Blocking convenience entry point (the ``repro serve`` verb)."""
    server = QueryServer(db, host, port, cache_size=cache_size,
                         verbose=verbose, max_inflight=max_inflight,
                         deadline_s=deadline_s)
    if watch is not None:
        server.watch(watch, watch_interval_s)
    try:
        server.serve_forever()
    finally:
        server._watch_stop.set()
        server._httpd.server_close()
