"""Embedded JSON HTTP API over a query engine — stdlib only.

A :class:`~http.server.ThreadingHTTPServer` front end for
:class:`~repro.query.engine.QueryEngine`.  Endpoints:

=========================  ==========================================
``GET /healthz``           liveness: status, version, db fingerprint
``GET /stats``             engine statistics (index + cache counters)
``GET /manufacturers``     manufacturers present in the database
``GET /metrics/dpm``       per-manufacturer DPM summaries
``GET /metrics/apm``       per-manufacturer APM summaries (Table VII)
``GET /metrics/dpa``       per-manufacturer DPA summaries (Table VI)
``GET|POST /query``        the full typed query surface
=========================  ==========================================

``GET /query`` reads the query from the URL (``?metric=dpm&group_by=
manufacturer&manufacturer=Waymo&month_from=2015-01``; repeat
``manufacturer`` to filter on several); ``POST /query`` takes the
same fields as a JSON object.  The ``/metrics/*`` shortcuts accept
the filter parameters too.

Every response is JSON except ``GET /metrics``, which serves the
process metrics registry in the Prometheus text exposition format —
request counts/latency by route, the query-result LRU and database
index sampled at scrape time, and (when the pipeline ran in this
process with ``metrics_enabled``) the pipeline series too.  Errors
are structured:  400 carries ``{"error": ...}`` for an invalid
query, 404 for an unknown path, 422 when the database is too thin
for the requested statistic
(:class:`~repro.errors.InsufficientDataError`).

Concurrency: requests are served on one thread each; the engine's
index is immutable, its cache locks internally, and the metrics
registry locks per metric, so concurrent reads need no further
coordination.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping
from urllib.parse import parse_qs, urlsplit

from .. import __version__
from ..errors import InsufficientDataError, QueryError, ReproError
from ..obs.metrics import (
    HTTP_LATENCY,
    HTTP_REQUESTS,
    INDEX_RECORDS,
    QUERY_CACHE_EVICTIONS,
    QUERY_CACHE_HITS,
    QUERY_CACHE_MISSES,
    QUERY_CACHE_SIZE,
    MetricsRegistry,
    default_registry,
)
from ..pipeline.store import FailureDatabase
from .engine import Query, QueryEngine

#: Metric families reachable as ``/metrics/<name>`` shortcuts.
METRIC_SHORTCUTS = ("dpm", "apm", "dpa")

#: Routes the request metrics label individually; anything else is
#: folded into ``<unknown>`` so scanners can't explode cardinality.
_KNOWN_ROUTES = frozenset(
    {"/", "/healthz", "/stats", "/manufacturers", "/query",
     "/metrics"} | {f"/metrics/{name}" for name in METRIC_SHORTCUTS})


def _query_from_params(params: Mapping[str, list[str]]) -> Query:
    """Build a query from URL parameters (``GET /query`` and the
    ``/metrics/*`` filters)."""
    known = {"metric", "group_by", "manufacturer", "manufacturers",
             "month_from", "month_to", "tag", "category"}
    unknown = sorted(set(params) - known)
    if unknown:
        raise QueryError(
            f"unknown query parameter(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(known))}")
    data: dict[str, Any] = {}
    if "metric" in params:
        data["metric"] = params["metric"][-1]
    for key in ("group_by", "month_from", "month_to", "tag",
                "category"):
        if key in params:
            data[key] = params[key][-1]
    names = list(params.get("manufacturer", []))
    for value in params.get("manufacturers", []):
        names.extend(part.strip() for part in value.split(",")
                     if part.strip())
    if names:
        data["manufacturers"] = tuple(names)
    return Query.from_dict(data)


class _Handler(BaseHTTPRequestHandler):
    """Routes one request; the engine lives on the server object."""

    server_version = f"repro-query/{__version__}"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    @property
    def engine(self) -> QueryEngine:
        return self.server.engine  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: Any) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send_body(status, "application/json", body)

    def _send_body(self, status: int, content_type: str,
                   body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self._observe(status)

    def _observe(self, status: int) -> None:
        """Record the request into the server's metrics registry."""
        server = self.server
        requests = getattr(server, "http_requests", None)
        if requests is None:
            return
        route = getattr(self, "_route", "<unknown>")
        requests.labels(route, str(status)).inc()
        started = getattr(self, "_started", None)
        if started is not None:
            server.http_latency.labels(route).observe(
                time.perf_counter() - started)

    def _dispatch(self, handler, *args) -> None:
        try:
            status, payload = handler(*args)
        except QueryError as exc:
            status, payload = 400, {"error": str(exc)}
        except InsufficientDataError as exc:
            status, payload = 422, {"error": str(exc)}
        except ReproError as exc:  # pragma: no cover - safety net
            status, payload = 500, {"error": str(exc)}
        self._send_json(status, payload)

    # -- routing -------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._started = time.perf_counter()
        url = urlsplit(self.path)
        params = parse_qs(url.query)
        route = url.path.rstrip("/") or "/"
        self._route = (route if route in _KNOWN_ROUTES
                       else "<unknown>")
        if route == "/healthz":
            self._dispatch(self._healthz)
        elif route == "/stats":
            self._dispatch(self._stats)
        elif route == "/manufacturers":
            self._dispatch(self._manufacturers)
        elif route == "/query":
            self._dispatch(self._query_get, params)
        elif route == "/metrics":
            self._metrics_exposition()
        elif route.startswith("/metrics/"):
            self._dispatch(self._metric, route[len("/metrics/"):],
                           params)
        else:
            self._send_json(404, {"error": f"unknown path "
                                           f"{url.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._started = time.perf_counter()
        route = urlsplit(self.path).path.rstrip("/")
        self._route = route if route == "/query" else "<unknown>"
        if route != "/query":
            self._send_json(404, {"error": f"unknown path "
                                           f"{self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            data = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": f"request body is not "
                                           f"valid JSON: {exc}"})
            return
        self._dispatch(self._query_post, data)

    # -- endpoints -----------------------------------------------------

    def _healthz(self) -> tuple[int, Any]:
        return 200, {
            "status": "ok",
            "version": __version__,
            "fingerprint": self.engine.fingerprint,
        }

    def _stats(self) -> tuple[int, Any]:
        return 200, self.engine.stats()

    def _manufacturers(self) -> tuple[int, Any]:
        return 200, {
            "manufacturers": list(self.engine.index.manufacturers),
        }

    def _query_get(self, params) -> tuple[int, Any]:
        query = _query_from_params(params)
        return 200, self.engine.execute(query).to_dict()

    def _query_post(self, data) -> tuple[int, Any]:
        return 200, self.engine.execute(Query.from_dict(data)).to_dict()

    def _metrics_exposition(self) -> None:
        """``GET /metrics``: the registry as Prometheus text.

        Cache and index levels are *sampled at scrape time* — they are
        gauges owned by the engine, not counters the request path
        maintains — so a scrape always reflects the live state.
        """
        registry: MetricsRegistry = self.server.metrics
        stats = self.engine.stats()
        cache = stats["cache"]
        registry.gauge(
            QUERY_CACHE_HITS, "Query-result LRU hits").set(
            cache["hits"])
        registry.gauge(
            QUERY_CACHE_MISSES, "Query-result LRU misses").set(
            cache["misses"])
        registry.gauge(
            QUERY_CACHE_EVICTIONS, "Query-result LRU evictions").set(
            cache["evictions"])
        registry.gauge(
            QUERY_CACHE_SIZE, "Query-result LRU resident entries").set(
            cache["size"])
        index_g = registry.gauge(
            INDEX_RECORDS, "Records in the served database index",
            ("kind",))
        for kind in ("disengagements", "accidents", "mileage_cells"):
            index_g.labels(kind).set(stats["index"][kind])
        body = registry.render_prometheus().encode("utf-8")
        self._send_body(200, "text/plain; version=0.0.4", body)

    def _metric(self, name: str, params) -> tuple[int, Any]:
        if name not in METRIC_SHORTCUTS:
            return 404, {"error": f"unknown metric endpoint {name!r}; "
                                  f"known: "
                                  f"{', '.join(METRIC_SHORTCUTS)}"}
        if "metric" in params:
            raise QueryError(
                "/metrics/* fixes the metric; drop the 'metric' "
                "parameter or use /query")
        query = _query_from_params({**params, "metric": [name]})
        return 200, self.engine.execute(query).to_dict()


class QueryServer:
    """A running (or startable) HTTP server around one engine.

    Usable blocking (:meth:`serve_forever`) or as a context manager
    that serves from a daemon thread — the test/embedding mode::

        with QueryServer(db, port=0) as server:
            urllib.request.urlopen(server.url + "/healthz")
    """

    def __init__(self, db: FailureDatabase | QueryEngine,
                 host: str = "127.0.0.1", port: int = 8350, *,
                 cache_size: int = 256,
                 verbose: bool = False,
                 registry: MetricsRegistry | None = None) -> None:
        self.engine = (db if isinstance(db, QueryEngine)
                       else QueryEngine(db, cache_size=cache_size))
        # The process-global registry by default, so a pipeline run in
        # this process shows up on the same /metrics scrape.
        self.registry = registry or default_registry()
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.engine = self.engine  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._httpd.metrics = (  # type: ignore[attr-defined]
            self.registry)
        self._httpd.http_requests = (  # type: ignore[attr-defined]
            self.registry.counter(
                HTTP_REQUESTS, "HTTP requests by route and status",
                ("route", "status")))
        self._httpd.http_latency = (  # type: ignore[attr-defined]
            self.registry.histogram(
                HTTP_LATENCY, "HTTP request latency by route",
                ("route",)))
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        """Bound host."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """Bound port (the real one, also when constructed with 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._httpd.serve_forever()

    def start(self) -> "QueryServer":
        """Serve from a background daemon thread."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-query-server", daemon=True)
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop serving and release the socket."""
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def serve(db: FailureDatabase, host: str = "127.0.0.1",
          port: int = 8350, *, cache_size: int = 256,
          verbose: bool = True) -> None:
    """Blocking convenience entry point (the ``repro serve`` verb)."""
    server = QueryServer(db, host, port, cache_size=cache_size,
                         verbose=verbose)
    try:
        server.serve_forever()
    finally:
        server._httpd.server_close()
