"""Query & serving layer: read-optimized access to a failure database.

The pipeline (Stages I-IV) *produces* a
:class:`~repro.pipeline.store.FailureDatabase`; this package *serves*
it.  Four cooperating pieces:

* :mod:`~repro.query.index` — immutable, read-optimized indexes built
  once per database snapshot (by manufacturer, month, fault tag,
  failure category, and record id) with O(1) lookups instead of the
  list scans the raw database offers.
* :mod:`~repro.query.engine` — :class:`QueryEngine`: typed query
  objects (filter + group-by + metric) executed against the index,
  reusing the Stage IV :mod:`repro.analysis` functions as kernels so a
  served answer is byte-identical to the direct computation.
* :mod:`~repro.query.cache` — a bounded, thread-safe LRU result cache
  keyed by (database fingerprint, canonical query); a content change
  changes the fingerprint, so stale entries can never be served.
* :mod:`~repro.query.server` — a stdlib-only threaded JSON HTTP API
  (``/healthz``, ``/stats``, ``/query``, ``/metrics/*``,
  ``/manufacturers``) plus the ``repro serve`` / ``repro query`` CLI
  verbs.

Quickstart::

    from repro import run_pipeline, PipelineConfig
    from repro.query import Query, QueryEngine

    db = run_pipeline(PipelineConfig(seed=2018)).database
    engine = QueryEngine(db)
    result = engine.execute(Query(metric="dpm",
                                  group_by="manufacturer"))
    print(result.value["Waymo"]["aggregate_dpm"])
"""

from .cache import CacheStats, LruCache
from .engine import (
    DEFAULT_SHARDS,
    GROUP_BYS,
    INDEX_BACKENDS,
    METRICS,
    Query,
    QueryEngine,
    QueryResult,
    to_jsonable,
)
from .index import (
    DatabaseIndex,
    ShardedIndex,
    accident_id,
    disengagement_id,
)
from .server import QueryServer, serve
from .snapshot import DirectoryWatcher, Snapshot, SnapshotManager

__all__ = [
    "CacheStats",
    "DEFAULT_SHARDS",
    "DatabaseIndex",
    "DirectoryWatcher",
    "GROUP_BYS",
    "INDEX_BACKENDS",
    "LruCache",
    "METRICS",
    "Query",
    "QueryEngine",
    "QueryResult",
    "QueryServer",
    "ShardedIndex",
    "Snapshot",
    "SnapshotManager",
    "accident_id",
    "disengagement_id",
    "serve",
    "to_jsonable",
]
