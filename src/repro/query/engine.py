"""The query engine: typed queries over an indexed failure database.

A :class:`Query` is **filter + group-by + metric**:

* metric — what to compute: ``dpm``, ``apm``, ``dpa``, ``count``,
  ``miles``, ``tags``, ``categories``, ``modalities``, ``trend``.
* group_by — how to slice it: ``manufacturer`` (the default for the
  analysis metrics), ``month``, ``year``, ``tag``, ``category``.
* filters — ``manufacturers``, a ``month_from``/``month_to`` range,
  a single fault ``tag`` or failure ``category``.

Execution reuses the Stage IV :mod:`repro.analysis` functions as
kernels (via :data:`repro.analysis.kernels.KERNELS`) — the engine
never re-implements the statistics, it only routes an (optionally
filtered) database snapshot into them and converts the result to
plain JSON-able data.  Results are memoized in a bounded LRU cache
keyed by ``(database fingerprint, canonical query)``.

Thread safety: the engine is safe for concurrent :meth:`~QueryEngine.
execute` calls — the index is immutable, the scope databases are
per-call, and the cache locks internally.  :meth:`~QueryEngine.
refresh` may run concurrently with readers: each request captures the
index reference exactly once and keys the cache off that snapshot's
fingerprint, so a swap mid-request can never blend snapshots or serve
a stale cached result to a post-swap request.  Only refresh-vs-refresh
needs external serialization (:class:`~repro.query.snapshot.
SnapshotManager` provides it).
"""

from __future__ import annotations

import dataclasses
import enum
import math
import re
import time
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from ..analysis.kernels import KERNELS
from ..errors import QueryError
from ..pipeline.checkpoint import canonical_json
from ..pipeline.store import FailureDatabase
from ..taxonomy import FailureCategory, FaultTag, category_of
from .cache import LruCache
from .index import DatabaseIndex, ShardedIndex

#: Index layouts the engine can build (``sharded`` partitions by
#: manufacturer; lookups are byte-identical either way).
INDEX_BACKENDS = ("monolithic", "sharded")

#: Shards built when ``index_backend="sharded"`` and the caller does
#: not say otherwise.
DEFAULT_SHARDS = 8

#: Every metric the engine serves.
METRICS = ("count", "miles", "dpm", "apm", "dpa", "tags",
           "categories", "modalities", "trend")

#: Every group-by dimension (not all metrics support all of them).
GROUP_BYS = ("manufacturer", "month", "year", "tag", "category")

#: metric -> group_by values it supports (None = ungrouped).
_ALLOWED: dict[str, tuple[str | None, ...]] = {
    "count": (None, "manufacturer", "month", "tag", "category"),
    "miles": (None, "manufacturer", "month"),
    "dpm": ("manufacturer", "month", "year"),
    "apm": ("manufacturer",),
    "dpa": (None, "manufacturer"),
    "tags": ("manufacturer",),
    "categories": ("manufacturer",),
    "modalities": ("manufacturer",),
    "trend": ("manufacturer",),
}

#: metric -> group_by filled in when the query leaves it unset.
_DEFAULT_GROUP_BY = {
    "dpm": "manufacturer",
    "apm": "manufacturer",
    "tags": "manufacturer",
    "categories": "manufacturer",
    "modalities": "manufacturer",
    "trend": "manufacturer",
}

_MONTH_RE = re.compile(r"^\d{4}-\d{2}$")

_MISS = object()


def _valid_month(value: str | None, name: str) -> None:
    if value is not None and not _MONTH_RE.match(value):
        raise QueryError(
            f"{name} must be a YYYY-MM month, got {value!r}")


@dataclass(frozen=True)
class Query:
    """One typed, canonicalizable query (filter + group-by + metric).

    Construction validates every field and raises
    :class:`~repro.errors.QueryError` on anything malformed, so a
    ``Query`` that exists is always executable.
    """

    metric: str
    group_by: str | None = None
    #: Restrict to these manufacturers (normalized: sorted, deduped).
    manufacturers: tuple[str, ...] | None = None
    #: Inclusive ``YYYY-MM`` month range; accidents without a month
    #: are excluded whenever a range is set.
    month_from: str | None = None
    month_to: str | None = None
    #: Restrict disengagements to one fault tag (accidents and
    #: mileage are unaffected — rates keep their full denominators).
    tag: str | None = None
    #: Restrict disengagements to one root failure category.
    category: str | None = None

    def __post_init__(self) -> None:
        if self.metric not in METRICS:
            raise QueryError(
                f"unknown metric {self.metric!r}; "
                f"known: {', '.join(METRICS)}")
        if self.group_by is None:
            object.__setattr__(self, "group_by",
                               _DEFAULT_GROUP_BY.get(self.metric))
        if self.group_by not in _ALLOWED[self.metric]:
            supported = ", ".join(
                str(g) for g in _ALLOWED[self.metric])
            raise QueryError(
                f"metric {self.metric!r} cannot group by "
                f"{self.group_by!r}; supported: {supported}")
        if self.manufacturers is not None:
            if isinstance(self.manufacturers, str):
                raise QueryError(
                    "manufacturers must be a sequence of names, "
                    f"got the string {self.manufacturers!r}")
            object.__setattr__(
                self, "manufacturers",
                tuple(sorted(set(self.manufacturers))))
        _valid_month(self.month_from, "month_from")
        _valid_month(self.month_to, "month_to")
        if (self.month_from and self.month_to
                and self.month_from > self.month_to):
            raise QueryError(
                f"empty month range: month_from {self.month_from!r} "
                f"is after month_to {self.month_to!r}")
        if self.tag is not None and not _is_value(FaultTag, self.tag):
            raise QueryError(
                f"unknown fault tag {self.tag!r}; known: "
                f"{', '.join(t.value for t in FaultTag)}")
        if self.category is not None and not _is_value(
                FailureCategory, self.category):
            raise QueryError(
                f"unknown failure category {self.category!r}; known: "
                f"{', '.join(c.value for c in FailureCategory)}")

    @property
    def filtered(self) -> bool:
        """Whether any filter narrows the database."""
        return (self.manufacturers is not None
                or self.month_from is not None
                or self.month_to is not None
                or self.tag is not None
                or self.category is not None)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form (only the fields that are set)."""
        out: dict[str, Any] = {"metric": self.metric}
        if self.group_by is not None:
            out["group_by"] = self.group_by
        if self.manufacturers is not None:
            out["manufacturers"] = list(self.manufacturers)
        for key in ("month_from", "month_to", "tag", "category"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out

    def canonical(self) -> str:
        """Deterministic encoding — the cache-key half the query
        contributes (the database fingerprint is the other half)."""
        return canonical_json(self.to_dict())

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Query":
        """Build and validate a query from decoded JSON."""
        if not isinstance(data, Mapping):
            raise QueryError(
                f"query must be a JSON object, got "
                f"{type(data).__name__}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise QueryError(
                f"unknown query field(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}")
        if "metric" not in data:
            raise QueryError("query is missing the 'metric' field")
        kwargs = dict(data)
        manufacturers = kwargs.get("manufacturers")
        if isinstance(manufacturers, str):
            kwargs["manufacturers"] = (manufacturers,)
        elif manufacturers is not None:
            kwargs["manufacturers"] = tuple(manufacturers)
        return cls(**kwargs)


def _is_value(enum_cls, value: str) -> bool:
    try:
        enum_cls(value)
    except ValueError:
        return False
    return True


# ----------------------------------------------------------------------
# JSON conversion.
# ----------------------------------------------------------------------


def to_jsonable(value: Any) -> Any:
    """Convert analysis output (dataclasses, Enums, numpy scalars,
    non-string dict keys) into plain JSON-able data.

    Non-finite floats become ``None`` — strict JSON has no
    ``Infinity``/``NaN``, and every consumer of a rate understands a
    null better than a parse error.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: to_jsonable(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, enum.Enum):
        return to_jsonable(value.value)
    if isinstance(value, Mapping):
        return {_jsonable_key(key): to_jsonable(item)
                for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        value = float(value)
        return value if math.isfinite(value) else None
    return value


def _jsonable_key(key: Any) -> str:
    if isinstance(key, enum.Enum):
        key = key.value
    return key if isinstance(key, str) else str(key)


# ----------------------------------------------------------------------
# Results.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class QueryResult:
    """One executed query: its provenance and its JSON-able value.

    ``value`` may be shared with the cache — treat it as read-only.
    """

    query: Query
    #: Fingerprint of the database snapshot that answered the query.
    fingerprint: str
    #: Whether the value came from the result cache.
    cached: bool
    elapsed_ms: float
    value: Any

    def to_dict(self) -> dict[str, Any]:
        """The ``/query`` response body."""
        return {
            "query": self.query.to_dict(),
            "fingerprint": self.fingerprint,
            "cached": self.cached,
            "elapsed_ms": self.elapsed_ms,
            "result": self.value,
        }


# ----------------------------------------------------------------------
# The engine.
# ----------------------------------------------------------------------


class QueryEngine:
    """Executes :class:`Query` objects against one failure database.

    The database is treated as an immutable snapshot: the index is
    built once in the constructor and every result is cached under the
    snapshot's content fingerprint.  If the underlying database *is*
    mutated in place, call :meth:`refresh` — a changed fingerprint
    rebuilds the index and retires every cached result (their keys
    carry the old fingerprint, so they could never be served again
    anyway; refresh also frees them).
    """

    def __init__(self, db: FailureDatabase, *,
                 cache_size: int = 256,
                 index_backend: str = "monolithic",
                 shards: int = DEFAULT_SHARDS) -> None:
        if index_backend not in INDEX_BACKENDS:
            raise QueryError(
                f"unknown index backend {index_backend!r}; "
                f"known: {', '.join(INDEX_BACKENDS)}")
        self._db = db
        self._index_backend = index_backend
        self._shards = shards
        self._index = self._build_index(db)
        self._cache = LruCache(cache_size)

    def _build_index(self, db: FailureDatabase,
                     fingerprint: str | None = None,
                     ) -> DatabaseIndex | ShardedIndex:
        if self._index_backend == "sharded":
            return ShardedIndex.build(db, fingerprint=fingerprint,
                                      shards=self._shards)
        return DatabaseIndex.build(db, fingerprint=fingerprint)

    @property
    def db(self) -> FailureDatabase:
        """The underlying database."""
        return self._db

    @property
    def index(self) -> DatabaseIndex | ShardedIndex:
        """The current index snapshot."""
        return self._index

    @property
    def index_backend(self) -> str:
        """The index layout this engine builds (``monolithic`` or
        ``sharded``)."""
        return self._index_backend

    @property
    def fingerprint(self) -> str:
        """Content hash of the indexed snapshot."""
        return self._index.fingerprint

    def refresh(self) -> bool:
        """Re-fingerprint the database; rebuild on content change.

        Returns whether anything changed.  Safe against concurrent
        :meth:`execute` calls: the new index is built completely
        before the reference is swapped (one atomic assignment), and
        every request operates on the single index reference it
        captured on entry — a reader admitted before the swap answers
        wholly from the old snapshot, one admitted after answers
        wholly from the new one, and cache keys carry the snapshot
        fingerprint so neither can ever serve the other's results.
        Concurrent *writers* (two refreshes racing) are the caller's
        problem — use :class:`~repro.query.snapshot.SnapshotManager`
        for the full swap lifecycle.
        """
        fingerprint = self._db.fingerprint()
        if fingerprint == self._index.fingerprint:
            return False
        index = self._build_index(self._db, fingerprint=fingerprint)
        self._index = index  # the swap: one atomic reference store
        # Memory release only: old-fingerprint keys are unreachable
        # for any request admitted after the swap regardless (their
        # cache key carries the old fingerprint).  A straggler request
        # that captured the old index may still re-insert an
        # old-fingerprint entry after this clear; it is equally
        # unreachable and ages out of the LRU.
        self._cache.clear()
        return True

    def stats(self) -> dict[str, Any]:
        """JSON-able engine statistics (the ``/stats`` body)."""
        index = self._index
        return {
            "fingerprint": index.fingerprint,
            "index": index.summary(),
            "cache": self._cache.stats().to_dict(),
        }

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def execute(self, query: Query | Mapping[str, Any]) -> QueryResult:
        """Execute (or serve from cache) one query.

        The index reference is captured **once** per request and used
        for the cache key, the computation, and the result
        provenance, so a concurrent :meth:`refresh`/snapshot swap can
        never produce a blended answer: everything in one
        :class:`QueryResult` comes from exactly one snapshot.
        """
        if not isinstance(query, Query):
            query = Query.from_dict(query)
        started = time.perf_counter()
        index = self._index  # single snapshot reference per request
        key = (index.fingerprint, query.canonical())
        value = self._cache.get(key, _MISS)
        cached = value is not _MISS
        if not cached:
            value = self._compute(query, index)
            self._cache.put(key, value)
        return QueryResult(
            query=query,
            fingerprint=index.fingerprint,
            cached=cached,
            elapsed_ms=(time.perf_counter() - started) * 1e3,
            value=value,
        )

    def _compute(self, query: Query,
                 index: DatabaseIndex | ShardedIndex) -> Any:
        if query.metric == "count":
            return self._count(query, index)
        if query.metric == "miles":
            return self._miles(query, index)
        kernel = KERNELS[(query.metric, query.group_by)]
        return to_jsonable(kernel(self.scope(query, index)))

    # ------------------------------------------------------------------
    # Filtering.
    # ------------------------------------------------------------------

    def scope(self, query: Query,
              index: DatabaseIndex | ShardedIndex | None = None,
              ) -> FailureDatabase:
        """The database slice a query runs over.

        Unfiltered queries get the snapshot's database object;
        filtered ones get a sub-database assembled from the index
        (records ordered by manufacturer, original order within one
        manufacturer).  This is the *definition* of a filtered
        answer: the direct-analysis parity comparison runs the
        analysis function over this same slice.  ``index`` pins the
        snapshot (requests pass the reference they captured on
        entry); when omitted, the current one is used.
        """
        if index is None:
            index = self._index
        if not query.filtered:
            return index.database
        names = (query.manufacturers if query.manufacturers is not None
                 else index.manufacturers)

        if query.tag is not None:
            base = index.disengagements_with_tag(FaultTag(query.tag))
            wanted = set(names)
            disengagements = [r for r in base
                              if r.manufacturer in wanted]
        elif query.category is not None:
            base = index.disengagements_in_category(
                FailureCategory(query.category))
            wanted = set(names)
            disengagements = [r for r in base
                              if r.manufacturer in wanted]
        else:
            disengagements = [r for name in names
                              for r in index.disengagements_for(name)]
        accidents = [r for name in names
                     for r in index.accidents_for(name)]
        mileage = [c for name in names
                   for c in index.mileage_for(name)]

        lo, hi = query.month_from, query.month_to
        if lo is not None or hi is not None:
            def in_range(month: str | None) -> bool:
                return (month is not None
                        and (lo is None or month >= lo)
                        and (hi is None or month <= hi))

            disengagements = [r for r in disengagements
                              if in_range(r.month)]
            accidents = [r for r in accidents if in_range(r.month)]
            mileage = [c for c in mileage if in_range(c.month)]

        return FailureDatabase(disengagements=disengagements,
                               accidents=accidents, mileage=mileage)

    # ------------------------------------------------------------------
    # Index-served metrics (no analysis kernel needed).
    # ------------------------------------------------------------------

    def _count(self, query: Query,
               index: DatabaseIndex | ShardedIndex) -> Any:
        if not query.filtered:
            # O(1)/O(groups): straight off the prebuilt index.
            if query.group_by is None:
                return dict(index.counts)
            if query.group_by == "manufacturer":
                # Manufacturers with no disengagements are omitted,
                # matching the grouped-dict semantics everywhere else.
                return {name: len(index.disengagements_for(name))
                        for name in index.manufacturers
                        if index.disengagements_for(name)}
            if query.group_by == "month":
                return {month: len(index.disengagements_in_month(month))
                        for month in index.months
                        if index.disengagements_in_month(month)}
            if query.group_by == "tag":
                return {tag.value:
                        len(index.disengagements_with_tag(tag))
                        for tag in index.tags}
            return {category.value:
                    len(index.disengagements_in_category(category))
                    for category in index.categories}
        return _count_scoped(self.scope(query, index), query.group_by)

    def _miles(self, query: Query,
               index: DatabaseIndex | ShardedIndex) -> Any:
        if not query.filtered:
            if query.group_by is None:
                return sum(index.miles_for(name)
                           for name in index.manufacturers)
            if query.group_by == "manufacturer":
                return {name: index.miles_for(name)
                        for name in index.manufacturers}
            totals: dict[str, float] = {}
            for name in index.manufacturers:
                for month, miles in index.monthly_miles(name).items():
                    totals[month] = totals.get(month, 0.0) + miles
            return dict(sorted(totals.items()))
        scope = self.scope(query, index)
        if query.group_by is None:
            return scope.total_miles
        if query.group_by == "manufacturer":
            return dict(sorted(scope.miles_by_manufacturer().items()))
        totals = {}
        for cell in scope.mileage:
            totals[cell.month] = totals.get(cell.month, 0.0) + cell.miles
        return dict(sorted(totals.items()))


def _count_scoped(scope: FailureDatabase,
                  group_by: str | None) -> Any:
    """Disengagement counts over an already-filtered slice."""
    if group_by is None:
        return {
            "disengagements": len(scope.disengagements),
            "accidents": len(scope.accidents),
            "mileage_cells": len(scope.mileage),
            "manufacturers": len(scope.manufacturers()),
        }
    counts: dict[str, int] = {}
    for record in scope.disengagements:
        if group_by == "manufacturer":
            key = record.manufacturer
        elif group_by == "month":
            key = record.month
        elif group_by == "tag":
            if record.tag is None:
                continue
            key = record.tag.value
        else:  # category
            if record.tag is None:
                continue
            key = category_of(record.tag).value
        counts[key] = counts.get(key, 0) + 1
    return dict(sorted(counts.items()))
