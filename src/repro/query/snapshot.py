"""Atomic snapshot lifecycle for the always-on query service.

The engine (:mod:`repro.query.engine`) already makes a *single* swap
safe — each request captures one index reference and keys the cache
off that snapshot's fingerprint.  This module owns everything around
the swap:

* :class:`Snapshot` — one immutable generation of the serving state:
  the engine, its fingerprint, where it came from, when it went live.
* :class:`SnapshotManager` — holds the live snapshot behind a
  generation-counted atomic pointer.  Candidates arrive either as
  in-memory databases (:meth:`~SnapshotManager.swap_database`, the
  ingestion path) or as files (:meth:`~SnapshotManager.load`, the
  watch-mode path); a corrupt or torn candidate
  (:class:`~repro.errors.CorruptDatabaseError`) is **quarantined** —
  counted, remembered, and the last-good snapshot keeps serving.  A
  hard crash mid-swap (the chaos harness's
  :class:`~repro.pipeline.chaos.SimulatedCrash` at any
  :data:`~repro.pipeline.chaos.SWAP_POINTS` boundary) leaves the
  pointer untouched: the expensive work (read, decode, index build)
  happens entirely *before* the one-reference publish.
* :class:`DirectoryWatcher` — stat-based polling for new database
  drops, feeding ``repro serve --watch``.

Metrics (when a registry is attached): swap counter by outcome
(``ok`` / ``noop`` / ``quarantined``), a generation gauge, and a
quarantine counter — the ``/metrics`` scrape tells the whole story of
a chaotic afternoon.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

from ..errors import CorruptDatabaseError
from ..obs.metrics import (
    MetricsRegistry,
    SNAPSHOT_GENERATION,
    SNAPSHOT_QUARANTINED,
    SNAPSHOT_SWAPS,
)
from ..pipeline.chaos import ServingChaos
from ..pipeline.checkpoint import sha256_text
from ..pipeline.store import FailureDatabase
from .engine import DEFAULT_SHARDS, QueryEngine


@dataclass(frozen=True)
class Snapshot:
    """One immutable generation of the serving state."""

    #: Monotonic generation counter (1 = the snapshot served at boot).
    generation: int
    #: The engine answering queries for this generation.
    engine: QueryEngine
    #: Content fingerprint of the generation's database.
    fingerprint: str
    #: Where the database came from (a path, or ``None`` for in-memory).
    source: str | None
    #: ``time.time()`` when this generation went live.
    activated_at: float

    def to_dict(self) -> dict[str, Any]:
        """JSON-able description (the ``/readyz`` snapshot section)."""
        return {
            "generation": self.generation,
            "fingerprint": self.fingerprint,
            "source": self.source,
            "activated_at": self.activated_at,
        }


class SnapshotManager:
    """Owns the live snapshot behind a generation-counted atomic swap.

    Readers call :meth:`current` (one attribute read — atomic under
    the GIL) and use that snapshot's engine for the whole request;
    they never lock.  Swappers serialize on an internal lock, build
    the complete replacement snapshot off to the side, and publish it
    with a single reference assignment — there is no instant at which
    a reader can observe a half-swapped state.
    """

    def __init__(self, db: FailureDatabase | QueryEngine, *,
                 source: str | None = None, cache_size: int = 256,
                 index_backend: str = "monolithic",
                 shards: int = DEFAULT_SHARDS,
                 registry: MetricsRegistry | None = None,
                 chaos: ServingChaos | None = None) -> None:
        if isinstance(db, QueryEngine):
            engine = db
            # Replacement engines built here (swap_database / load)
            # keep the layout the caller's engine already chose.
            index_backend = db.index_backend
        else:
            engine = QueryEngine(db, cache_size=cache_size,
                                 index_backend=index_backend,
                                 shards=shards)
        self._cache_size = cache_size
        self._index_backend = index_backend
        self._shards = shards
        self._chaos = chaos
        self._lock = threading.Lock()
        self._quarantined = 0
        self._last_error: str | None = None
        self._snapshot = Snapshot(
            generation=1, engine=engine,
            fingerprint=engine.fingerprint, source=source,
            activated_at=time.time())
        self._swaps = None
        self._generation_gauge = None
        self._quarantine_counter = None
        if registry is not None:
            self._swaps = registry.counter(
                SNAPSHOT_SWAPS, "Snapshot swap attempts by outcome.",
                ("outcome",))
            self._generation_gauge = registry.gauge(
                SNAPSHOT_GENERATION,
                "Generation of the currently served snapshot.")
            self._generation_gauge.set(1)
            self._quarantine_counter = registry.counter(
                SNAPSHOT_QUARANTINED,
                "Candidate databases quarantined as corrupt.")

    # ------------------------------------------------------------------
    # Reader side.
    # ------------------------------------------------------------------

    def current(self) -> Snapshot:
        """The live snapshot (one atomic read; capture once per
        request and use it throughout)."""
        return self._snapshot

    @property
    def engine(self) -> QueryEngine:
        """The live snapshot's engine."""
        return self._snapshot.engine

    @property
    def generation(self) -> int:
        """The live snapshot's generation."""
        return self._snapshot.generation

    @property
    def fingerprint(self) -> str:
        """The live snapshot's fingerprint."""
        return self._snapshot.fingerprint

    @property
    def degraded(self) -> bool:
        """Whether the last swap attempt was quarantined (we are
        still serving, but from an older generation than offered)."""
        return self._last_error is not None

    @property
    def last_error(self) -> str | None:
        """Why the last candidate was quarantined, if it was."""
        return self._last_error

    def stats(self) -> dict[str, Any]:
        """JSON-able manager state (``/readyz`` body, tests)."""
        snapshot = self._snapshot
        return {
            "snapshot": snapshot.to_dict(),
            "degraded": self.degraded,
            "quarantined": self._quarantined,
            "last_error": self._last_error,
        }

    # ------------------------------------------------------------------
    # Swapper side.
    # ------------------------------------------------------------------

    def swap_database(self, db: FailureDatabase, *,
                      source: str | None = None) -> bool:
        """Swap in an in-memory candidate database.

        Returns whether a new generation went live.  An unchanged
        fingerprint is a no-op (but clears the degraded flag — the
        offered content *is* what we serve).  The index build happens
        before the publish, so readers never see a partial swap.
        """
        with self._lock:
            fingerprint = db.fingerprint()
            if fingerprint == self._snapshot.fingerprint:
                self._last_error = None
                self._count_swap("noop")
                return False
            if self._chaos is not None:
                self._chaos.reached("swap-build")
            engine = self._build_engine(db)
            if self._chaos is not None:
                self._chaos.reached("swap-publish")
            self._publish(engine, fingerprint, source)
            return True

    def swap_engine(self, engine: QueryEngine, *,
                    source: str | None = None) -> bool:
        """Publish a prebuilt engine — the O(1) swap.

        The caller already paid for the index build (and the engine
        carries its own fingerprint), so the only work under the lock
        is the fingerprint comparison and the pointer publish.  This
        is the path for callers that prepare the replacement entirely
        off the serving path: on a busy single-core box, even a
        swapper *thread* building an index steals the GIL from
        request handlers, so build first, publish last.
        """
        with self._lock:
            fingerprint = engine.fingerprint
            if fingerprint == self._snapshot.fingerprint:
                self._last_error = None
                self._count_swap("noop")
                return False
            if self._chaos is not None:
                self._chaos.reached("swap-publish")
            self._publish(engine, fingerprint, source)
            return True

    def load(self, path: str | Path) -> bool:
        """Read, verify, and swap in a candidate database file.

        Returns whether a new generation went live.  A corrupt or
        torn candidate (bad checksum sidecar, malformed JSON, wrong
        structure) is quarantined: counted, remembered as
        :attr:`last_error`, and ``False`` is returned while the
        last-good snapshot keeps serving.  Errors other than
        corruption (e.g. the file vanished between poll and read)
        propagate — the caller decides whether that is fatal.
        """
        path = Path(path)
        with self._lock:
            if self._chaos is not None:
                self._chaos.reached("swap-load")
            try:
                db = self._read_candidate(path)
            except CorruptDatabaseError as exc:
                self._quarantine(str(exc))
                return False
            fingerprint = db.fingerprint()
            if fingerprint == self._snapshot.fingerprint:
                self._last_error = None
                self._count_swap("noop")
                return False
            if self._chaos is not None:
                self._chaos.reached("swap-build")
            engine = self._build_engine(db)
            if self._chaos is not None:
                self._chaos.reached("swap-publish")
            self._publish(engine, fingerprint, str(path))
            return True

    # ------------------------------------------------------------------
    # Internals (all called under the swap lock).
    # ------------------------------------------------------------------

    def _build_engine(self, db: FailureDatabase) -> QueryEngine:
        """Build a replacement engine with this manager's layout."""
        return QueryEngine(db, cache_size=self._cache_size,
                           index_backend=self._index_backend,
                           shards=self._shards)

    def _read_candidate(self, path: Path) -> FailureDatabase:
        """Read + verify one candidate file (chaos garbles pre-decode,
        exactly where a torn write would)."""
        text = path.read_text(encoding="utf-8")
        if self._chaos is not None:
            text = self._chaos.corrupt_text(text)
        sidecar = path.with_name(path.name + ".sha256")
        if sidecar.exists():
            expected = sidecar.read_text(encoding="utf-8").split()
            if not expected or sha256_text(text) != expected[0]:
                raise CorruptDatabaseError(
                    f"candidate database {path} does not match its "
                    ".sha256 sidecar", path=str(path),
                    reason="checksum mismatch")
        return FailureDatabase.from_json(text, source=path)

    def _publish(self, engine: QueryEngine, fingerprint: str,
                 source: str | None) -> None:
        snapshot = Snapshot(
            generation=self._snapshot.generation + 1,
            engine=engine, fingerprint=fingerprint, source=source,
            activated_at=time.time())
        self._snapshot = snapshot  # the one-reference publish
        self._last_error = None
        self._count_swap("ok")
        if self._generation_gauge is not None:
            self._generation_gauge.set(snapshot.generation)

    def _quarantine(self, reason: str) -> None:
        self._quarantined += 1
        self._last_error = reason
        self._count_swap("quarantined")
        if self._quarantine_counter is not None:
            self._quarantine_counter.inc()

    def _count_swap(self, outcome: str) -> None:
        if self._swaps is not None:
            self._swaps.labels(outcome).inc()


class DirectoryWatcher:
    """Stat-based polling for new database drops in one directory.

    Tracks ``(mtime_ns, size)`` per ``*.json`` file (``.sha256``
    sidecars are not candidates) and reports paths that are new or
    changed since the previous poll, sorted by name for a
    deterministic swap order.  Stat-based — no inotify dependency —
    so it works anywhere the tests run.
    """

    def __init__(self, directory: str | Path,
                 pattern: str = "*.json") -> None:
        self.directory = Path(directory)
        self.pattern = pattern
        self._seen: dict[Path, tuple[int, int]] = {}

    def poll(self) -> list[Path]:
        """Paths new or changed since the last poll, sorted by name."""
        changed: list[Path] = []
        for path in sorted(self._candidates()):
            try:
                stat = path.stat()
            except OSError:
                continue  # vanished between glob and stat
            signature = (stat.st_mtime_ns, stat.st_size)
            if self._seen.get(path) != signature:
                self._seen[path] = signature
                changed.append(path)
        return changed

    def _candidates(self) -> Iterable[Path]:
        if not self.directory.is_dir():
            return ()
        return (path for path in self.directory.glob(self.pattern)
                if not path.name.endswith(".sha256"))
