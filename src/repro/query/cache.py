"""Bounded, thread-safe LRU result cache for the query engine.

Keys are ``(database fingerprint, canonical query)`` pairs: the
fingerprint is the content hash of the database snapshot an entry was
computed from, so a content change makes every old key unreachable —
stale results are *structurally* impossible to serve, no explicit
invalidation pass needed.  (The engine still clears the cache on
:meth:`~repro.query.engine.QueryEngine.refresh` to release the
memory; correctness never depends on it.)

Hit/miss/eviction counters are kept under the same lock as the map
and surfaced through :meth:`LruCache.stats` for ``/stats``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

#: Distinguishes "no entry" from a cached ``None`` value.
_MISS = object()


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of one :class:`LruCache`."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        """Hits over total lookups (0.0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form (the ``/stats`` ``cache`` section)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "maxsize": self.maxsize,
            "hit_rate": self.hit_rate,
        }


class LruCache:
    """A classic bounded LRU map, safe for concurrent readers/writers.

    ``maxsize <= 0`` disables caching entirely (every lookup misses,
    nothing is stored) — handy for benchmarking the uncached path
    through otherwise identical code.
    """

    def __init__(self, maxsize: int = 256) -> None:
        self._maxsize = maxsize
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value, counting the hit/miss; LRU-refreshes."""
        with self._lock:
            value = self._data.get(key, _MISS)
            if value is _MISS:
                self._misses += 1
                return default
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def __contains__(self, key: Hashable) -> bool:
        # Pure membership probe: no counter side effects.
        with self._lock:
            return key in self._data

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/overwrite, evicting the LRU entry past capacity."""
        if self._maxsize <= 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self._maxsize:
                self._data.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept — they describe the
        cache's lifetime, not the current population)."""
        with self._lock:
            self._data.clear()

    def stats(self) -> CacheStats:
        """Consistent snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._data),
                maxsize=self._maxsize,
            )
