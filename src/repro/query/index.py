"""Immutable, read-optimized indexes over a failure database.

A :class:`DatabaseIndex` is built **once** per database snapshot and
then only read: every lookup the serving layer needs — records by
manufacturer, by month, by fault tag, by failure category, by record
id, plus the precomputed mileage aggregates — is a dict access
(O(1)), never a scan over the record lists.  The mappings are wrapped
in :class:`types.MappingProxyType` and the record lists in tuples, so
concurrent readers can share one index without locks: there is nothing
to tear.

:class:`ShardedIndex` offers the **same lookup API** over the database
partitioned by manufacturer into independent per-shard
:class:`DatabaseIndex` sub-indexes (months ride along inside each
shard's monthly maps, so the shard key is effectively
manufacturer/month).  Manufacturer-keyed lookups route to exactly one
shard; cross-shard lookups (by month, tag, category, id) merge the
per-shard answers back into global row order, so every answer is
byte-identical to the monolithic index — the parity suite in
``tests/test_sharded_index.py`` enforces it lookup by lookup.  The
point of sharding is scale: shards are built independently (build cost
per shard stays flat as the corpus grows) and a multi-process front
end can spread shard builds across workers.

Both index kinds carry the :meth:`~repro.pipeline.store.
FailureDatabase.fingerprint` of the snapshot they were built from; the
engine uses it to detect content drift and the cache uses it as part
of every key.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from ..parsing.records import (
    AccidentRecord,
    DisengagementRecord,
    MonthlyMileage,
)
from ..pipeline.runner import record_id
from ..pipeline.store import FailureDatabase
from ..taxonomy import FailureCategory, FaultTag, category_of


def disengagement_id(record: DisengagementRecord) -> str:
    """Stable id for a disengagement record (provenance-derived when
    the record has one, content-derived otherwise) — the same id the
    checkpoint journals use, so a served record can be traced back to
    its journal entry."""
    return record_id(record)


def accident_id(record: AccidentRecord) -> str:
    """Stable content-derived id for an accident record.

    Accident reports carry no line-level provenance (one OL-316 form
    per document), so the id is always content-derived.
    """
    digest = hashlib.sha256("|".join((
        record.manufacturer, record.month or "",
        record.description,
    )).encode("utf-8")).hexdigest()[:16]
    return f"accident:{digest}"


def _frozen(mapping: dict) -> Mapping:
    """Read-only view with tuple values where values are lists."""
    return MappingProxyType({
        key: (tuple(value) if isinstance(value, list) else value)
        for key, value in mapping.items()})


@dataclass(frozen=True)
class DatabaseIndex:
    """Read-only lookup structures for one database snapshot."""

    #: Content hash of the snapshot this index was built from.
    fingerprint: str
    manufacturers: tuple[str, ...]
    months: tuple[str, ...]
    #: The database snapshot itself.  Kept on the index so a request
    #: that captured one index reference sees *matching* raw record
    #: lists (unfiltered query scopes) — it can never blend an old
    #: index with a newer database, whatever refresh/swap does
    #: concurrently.
    database: FailureDatabase = field(repr=False)

    _disengagements_by_manufacturer: Mapping[
        str, tuple[DisengagementRecord, ...]] = field(repr=False)
    _accidents_by_manufacturer: Mapping[
        str, tuple[AccidentRecord, ...]] = field(repr=False)
    _mileage_by_manufacturer: Mapping[
        str, tuple[MonthlyMileage, ...]] = field(repr=False)
    _disengagements_by_month: Mapping[
        str, tuple[DisengagementRecord, ...]] = field(repr=False)
    _disengagements_by_tag: Mapping[
        FaultTag, tuple[DisengagementRecord, ...]] = field(repr=False)
    _disengagements_by_category: Mapping[
        FailureCategory, tuple[DisengagementRecord, ...]] = field(
        repr=False)
    _disengagement_by_id: Mapping[str, DisengagementRecord] = field(
        repr=False)
    _accident_by_id: Mapping[str, AccidentRecord] = field(repr=False)
    #: Manufacturer -> total autonomous miles (precomputed).
    _miles_by_manufacturer: Mapping[str, float] = field(repr=False)
    #: Manufacturer -> month -> miles (precomputed, months sorted).
    _monthly_miles: Mapping[str, Mapping[str, float]] = field(repr=False)
    #: Manufacturer -> month -> disengagement count.
    _monthly_disengagements: Mapping[str, Mapping[str, int]] = field(
        repr=False)
    counts: Mapping[str, int] = field(repr=False)

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, db: FailureDatabase,
              fingerprint: str | None = None) -> "DatabaseIndex":
        """One pass over each record list; O(1) lookups ever after.

        ``fingerprint`` lets a caller that already hashed the database
        (the engine does, for cache keying) avoid hashing it twice.
        """
        # The grouping keys come from the database's index-row streams
        # rather than per-record attribute access: the columnar
        # backend serves (manufacturer, month, tag) straight from its
        # packed arrays, the dict backend reads the attributes — one
        # build implementation, byte-identical groupings either way.
        by_manufacturer: dict[str, list] = {}
        by_month: dict[str, list] = {}
        by_tag: dict[FaultTag, list] = {}
        by_category: dict[FailureCategory, list] = {}
        by_id: dict[str, DisengagementRecord] = {}
        monthly_events: dict[str, dict[str, int]] = {}
        for record, manufacturer, month, tag \
                in db.disengagement_index_rows():
            by_manufacturer.setdefault(manufacturer,
                                       []).append(record)
            by_month.setdefault(month, []).append(record)
            if tag is not None:
                by_tag.setdefault(tag, []).append(record)
                by_category.setdefault(category_of(tag),
                                       []).append(record)
            by_id[disengagement_id(record)] = record
            per_month = monthly_events.setdefault(manufacturer, {})
            per_month[month] = per_month.get(month, 0) + 1

        accidents_by_manufacturer: dict[str, list] = {}
        accident_ids: dict[str, AccidentRecord] = {}
        for record, manufacturer in db.accident_index_rows():
            accidents_by_manufacturer.setdefault(
                manufacturer, []).append(record)
            accident_ids[accident_id(record)] = record

        mileage_by_manufacturer: dict[str, list] = {}
        miles_totals: dict[str, float] = {}
        monthly_miles: dict[str, dict[str, float]] = {}
        months: set[str] = set(by_month)
        for cell, manufacturer, month, miles \
                in db.mileage_index_rows():
            mileage_by_manufacturer.setdefault(
                manufacturer, []).append(cell)
            miles_totals[manufacturer] = (
                miles_totals.get(manufacturer, 0.0) + miles)
            per_month = monthly_miles.setdefault(manufacturer, {})
            per_month[month] = per_month.get(month, 0.0) + miles
            months.add(month)

        return cls(
            fingerprint=(fingerprint if fingerprint is not None
                         else db.fingerprint()),
            manufacturers=tuple(db.manufacturers()),
            months=tuple(sorted(months)),
            database=db,
            _disengagements_by_manufacturer=_frozen(by_manufacturer),
            _accidents_by_manufacturer=_frozen(
                accidents_by_manufacturer),
            _mileage_by_manufacturer=_frozen(mileage_by_manufacturer),
            _disengagements_by_month=_frozen(by_month),
            _disengagements_by_tag=_frozen(by_tag),
            _disengagements_by_category=_frozen(by_category),
            _disengagement_by_id=MappingProxyType(by_id),
            _accident_by_id=MappingProxyType(accident_ids),
            _miles_by_manufacturer=MappingProxyType(miles_totals),
            _monthly_miles=MappingProxyType({
                name: MappingProxyType(dict(sorted(cells.items())))
                for name, cells in monthly_miles.items()}),
            _monthly_disengagements=MappingProxyType({
                name: MappingProxyType(dict(sorted(cells.items())))
                for name, cells in monthly_events.items()}),
            counts=MappingProxyType({
                "disengagements": len(db.disengagements),
                "accidents": len(db.accidents),
                "mileage_cells": len(db.mileage),
                "manufacturers": len(db.manufacturers()),
            }),
        )

    # ------------------------------------------------------------------
    # Lookups (all O(1)).
    # ------------------------------------------------------------------

    def disengagements_for(self, manufacturer: str,
                           ) -> tuple[DisengagementRecord, ...]:
        """Disengagement records of one manufacturer."""
        return self._disengagements_by_manufacturer.get(
            manufacturer, ())

    def accidents_for(self, manufacturer: str,
                      ) -> tuple[AccidentRecord, ...]:
        """Accident records of one manufacturer."""
        return self._accidents_by_manufacturer.get(manufacturer, ())

    def mileage_for(self, manufacturer: str,
                    ) -> tuple[MonthlyMileage, ...]:
        """Mileage cells of one manufacturer."""
        return self._mileage_by_manufacturer.get(manufacturer, ())

    def disengagements_in_month(self, month: str,
                                ) -> tuple[DisengagementRecord, ...]:
        """Disengagement records of one ``YYYY-MM`` month."""
        return self._disengagements_by_month.get(month, ())

    def disengagements_with_tag(self, tag: FaultTag,
                                ) -> tuple[DisengagementRecord, ...]:
        """Disengagement records carrying one NLP fault tag."""
        return self._disengagements_by_tag.get(tag, ())

    def disengagements_in_category(
            self, category: FailureCategory,
            ) -> tuple[DisengagementRecord, ...]:
        """Disengagement records in one root failure category."""
        return self._disengagements_by_category.get(category, ())

    def disengagement(self, unit_id: str) -> DisengagementRecord | None:
        """One disengagement record by its stable id."""
        return self._disengagement_by_id.get(unit_id)

    def accident(self, unit_id: str) -> AccidentRecord | None:
        """One accident record by its stable id."""
        return self._accident_by_id.get(unit_id)

    def miles_for(self, manufacturer: str) -> float:
        """Total autonomous miles of one manufacturer."""
        return self._miles_by_manufacturer.get(manufacturer, 0.0)

    def monthly_miles(self, manufacturer: str) -> Mapping[str, float]:
        """Month -> miles of one manufacturer (months sorted)."""
        return self._monthly_miles.get(
            manufacturer, MappingProxyType({}))

    def monthly_disengagements(self, manufacturer: str,
                               ) -> Mapping[str, int]:
        """Month -> disengagement count of one manufacturer."""
        return self._monthly_disengagements.get(
            manufacturer, MappingProxyType({}))

    @property
    def tags(self) -> tuple[FaultTag, ...]:
        """Fault tags present, in ontology order."""
        return tuple(tag for tag in FaultTag
                     if tag in self._disengagements_by_tag)

    @property
    def categories(self) -> tuple[FailureCategory, ...]:
        """Failure categories present, in ontology order."""
        return tuple(cat for cat in FailureCategory
                     if cat in self._disengagements_by_category)

    def summary(self) -> dict:
        """JSON-able description of the index (for ``/stats``)."""
        return {
            "fingerprint": self.fingerprint,
            "manufacturers": len(self.manufacturers),
            "months": len(self.months),
            "tags": len(self._disengagements_by_tag),
            "categories": len(self._disengagements_by_category),
            **dict(self.counts),
        }


# ----------------------------------------------------------------------
# Sharded index.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardedIndex:
    """The :class:`DatabaseIndex` lookup API over manufacturer shards.

    The database is partitioned by manufacturer into ``shard_count``
    sub-databases (round-robin over the sorted manufacturer names, row
    order preserved inside every shard) and one :class:`DatabaseIndex`
    is built per shard.  Manufacturer-keyed lookups route to exactly
    one shard; cross-shard lookups merge the per-shard answers back
    into **global row order** via the per-record ordinals recorded at
    build time, so every answer is byte-identical to a monolithic
    index over the same snapshot.
    """

    fingerprint: str
    manufacturers: tuple[str, ...]
    months: tuple[str, ...]
    #: The full database snapshot (same contract as
    #: :attr:`DatabaseIndex.database`).
    database: FailureDatabase = field(repr=False)
    #: The per-shard sub-indexes.
    shards: tuple[DatabaseIndex, ...] = field(repr=False)
    #: Manufacturer -> owning shard position.
    _shard_of: Mapping[str, int] = field(repr=False)
    #: ``id(record)`` -> global row ordinal for disengagements — the
    #: merge key that restores original interleaving on cross-shard
    #: lookups.  Keyed by identity: the shard sub-databases hold the
    #: same record objects, and the map lives exactly as long as the
    #: index that holds those references.
    _ordinal: Mapping[int, int] = field(repr=False)
    _tags: tuple[FaultTag, ...] = field(repr=False)
    _categories: tuple[FailureCategory, ...] = field(repr=False)
    counts: Mapping[str, int] = field(repr=False)

    @classmethod
    def build(cls, db: FailureDatabase,
              fingerprint: str | None = None,
              shards: int = 8) -> "ShardedIndex":
        """Partition by manufacturer, build one sub-index per shard."""
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        names = tuple(db.manufacturers())
        shard_count = max(1, min(shards, len(names) or 1))
        shard_of = {name: position % shard_count
                    for position, name in enumerate(names)}

        parts = [FailureDatabase() for _ in range(shard_count)]
        ordinal: dict[int, int] = {}
        months: set[str] = set()
        for row, (record, manufacturer, month, _tag) in enumerate(
                db.disengagement_index_rows()):
            parts[shard_of[manufacturer]].disengagements.append(record)
            ordinal[id(record)] = row
            months.add(month)
        for record, manufacturer in db.accident_index_rows():
            parts[shard_of[manufacturer]].accidents.append(record)
        for cell, manufacturer, month, _miles in db.mileage_index_rows():
            parts[shard_of[manufacturer]].mileage.append(cell)
            months.add(month)

        top_fingerprint = (fingerprint if fingerprint is not None
                           else db.fingerprint())
        built = tuple(
            DatabaseIndex.build(
                part, fingerprint=f"{top_fingerprint}#shard{i}")
            for i, part in enumerate(parts))

        present_tags = {tag for shard in built for tag in shard.tags}
        present_categories = {category for shard in built
                              for category in shard.categories}
        return cls(
            fingerprint=top_fingerprint,
            manufacturers=names,
            months=tuple(sorted(months)),
            database=db,
            shards=built,
            _shard_of=MappingProxyType(shard_of),
            _ordinal=MappingProxyType(ordinal),
            _tags=tuple(tag for tag in FaultTag
                        if tag in present_tags),
            _categories=tuple(category for category in FailureCategory
                              if category in present_categories),
            counts=MappingProxyType({
                "disengagements": len(db.disengagements),
                "accidents": len(db.accidents),
                "mileage_cells": len(db.mileage),
                "manufacturers": len(names),
            }),
        )

    @property
    def shard_count(self) -> int:
        """Number of shards actually built."""
        return len(self.shards)

    # ------------------------------------------------------------------
    # Routed lookups (one shard, O(1)).
    # ------------------------------------------------------------------

    def _shard(self, manufacturer: str) -> DatabaseIndex | None:
        position = self._shard_of.get(manufacturer)
        return None if position is None else self.shards[position]

    def disengagements_for(self, manufacturer: str,
                           ) -> tuple[DisengagementRecord, ...]:
        """Disengagement records of one manufacturer."""
        shard = self._shard(manufacturer)
        return () if shard is None else shard.disengagements_for(
            manufacturer)

    def accidents_for(self, manufacturer: str,
                      ) -> tuple[AccidentRecord, ...]:
        """Accident records of one manufacturer."""
        shard = self._shard(manufacturer)
        return () if shard is None else shard.accidents_for(
            manufacturer)

    def mileage_for(self, manufacturer: str,
                    ) -> tuple[MonthlyMileage, ...]:
        """Mileage cells of one manufacturer."""
        shard = self._shard(manufacturer)
        return () if shard is None else shard.mileage_for(manufacturer)

    def miles_for(self, manufacturer: str) -> float:
        """Total autonomous miles of one manufacturer."""
        shard = self._shard(manufacturer)
        return 0.0 if shard is None else shard.miles_for(manufacturer)

    def monthly_miles(self, manufacturer: str) -> Mapping[str, float]:
        """Month -> miles of one manufacturer (months sorted)."""
        shard = self._shard(manufacturer)
        if shard is None:
            return MappingProxyType({})
        return shard.monthly_miles(manufacturer)

    def monthly_disengagements(self, manufacturer: str,
                               ) -> Mapping[str, int]:
        """Month -> disengagement count of one manufacturer."""
        shard = self._shard(manufacturer)
        if shard is None:
            return MappingProxyType({})
        return shard.monthly_disengagements(manufacturer)

    # ------------------------------------------------------------------
    # Merged lookups (cross-shard, restored to global row order).
    # ------------------------------------------------------------------

    def _merged(self, per_shard) -> tuple[DisengagementRecord, ...]:
        """Merge per-shard record tuples back into global row order.

        Each shard's tuple is already ordinal-ascending (partitioning
        preserves relative order), so this is an S-way sorted merge,
        O(total merged records) — not a re-sort.
        """
        parts = [records for records in per_shard if records]
        if len(parts) == 1:
            return parts[0]
        ordinal = self._ordinal
        return tuple(heapq.merge(
            *parts, key=lambda record: ordinal[id(record)]))

    def disengagements_in_month(self, month: str,
                                ) -> tuple[DisengagementRecord, ...]:
        """Disengagement records of one ``YYYY-MM`` month."""
        return self._merged(shard.disengagements_in_month(month)
                            for shard in self.shards)

    def disengagements_with_tag(self, tag: FaultTag,
                                ) -> tuple[DisengagementRecord, ...]:
        """Disengagement records carrying one NLP fault tag."""
        return self._merged(shard.disengagements_with_tag(tag)
                            for shard in self.shards)

    def disengagements_in_category(
            self, category: FailureCategory,
            ) -> tuple[DisengagementRecord, ...]:
        """Disengagement records in one root failure category."""
        return self._merged(shard.disengagements_in_category(category)
                            for shard in self.shards)

    def disengagement(self, unit_id: str) -> DisengagementRecord | None:
        """One disengagement record by its stable id."""
        for shard in self.shards:
            record = shard.disengagement(unit_id)
            if record is not None:
                return record
        return None

    def accident(self, unit_id: str) -> AccidentRecord | None:
        """One accident record by its stable id."""
        for shard in self.shards:
            record = shard.accident(unit_id)
            if record is not None:
                return record
        return None

    @property
    def tags(self) -> tuple[FaultTag, ...]:
        """Fault tags present, in ontology order."""
        return self._tags

    @property
    def categories(self) -> tuple[FailureCategory, ...]:
        """Failure categories present, in ontology order."""
        return self._categories

    def summary(self) -> dict:
        """JSON-able description — **identical** to the monolithic
        index's summary over the same snapshot, so a sharded server's
        ``/v1/stats`` body cannot be told apart from a monolithic one
        (the shard layout is an implementation detail, reachable via
        :attr:`shard_count` for operators, never on the wire)."""
        return {
            "fingerprint": self.fingerprint,
            "manufacturers": len(self.manufacturers),
            "months": len(self.months),
            "tags": len(self._tags),
            "categories": len(self._categories),
            **dict(self.counts),
        }
