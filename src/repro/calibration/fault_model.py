"""Per-manufacturer fault-tag mixtures (Table IV and Fig. 6).

Table IV reports, for five manufacturers, the percentage of
disengagements falling in each coarse failure category (with ML/Design
split into planner/controller vs. perception/recognition).  Fig. 6 shows
the finer per-tag breakdown as stacked bars.  The mixtures below are
chosen so that the *category* sums match Table IV exactly for the five
manufacturers it lists; the within-category tag split follows the
relative bar heights of Fig. 6.

Mercedes-Benz, Bosch, and GMCruise do not appear in Table IV (Bosch and
GMCruise report all disengagements as planned tests; Mercedes-Benz logs
lack causal narratives).  For these we assign representative mixtures so
that every synthesized event still carries a ground-truth tag; the
Table IV bench only prints the five manufacturers the paper lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CalibrationError
from ..taxonomy import FailureCategory, FaultTag, MlSubcategory, category_of, ml_subcategory_of


@dataclass(frozen=True)
class FaultMixture:
    """A probability distribution over fault tags for one manufacturer."""

    manufacturer: str
    #: Tag -> probability, summing to 1.
    weights: dict[FaultTag, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        total = sum(self.weights.values())
        if abs(total - 1.0) > 1e-6:
            raise CalibrationError(
                f"fault mixture for {self.manufacturer} sums to {total}, "
                "expected 1.0")

    def category_share(self, category: FailureCategory) -> float:
        """Probability mass of the coarse ``category``."""
        return sum(w for tag, w in self.weights.items()
                   if category_of(tag) is category)

    def subcategory_share(self, subcategory: MlSubcategory) -> float:
        """Probability mass of a Table IV ML/Design subcategory."""
        return sum(w for tag, w in self.weights.items()
                   if ml_subcategory_of(tag) is subcategory)

    def tags(self) -> list[FaultTag]:
        """Tags with non-zero probability, heaviest first."""
        return sorted((t for t, w in self.weights.items() if w > 0),
                      key=lambda t: -self.weights[t])


def _mixture(manufacturer: str,
             percents: dict[FaultTag, float]) -> FaultMixture:
    """Build a mixture from percentages (summing to 100)."""
    weights = {tag: pct / 100.0 for tag, pct in percents.items()}
    return FaultMixture(manufacturer=manufacturer, weights=weights)


T = FaultTag

#: Tag mixtures (percent).  For Delphi, Nissan, Tesla, Volkswagen, and
#: Waymo, the category sums reproduce Table IV exactly:
#:   Delphi     37.59 / 50.17 / 12.24 / 0
#:   Nissan     36.30 / 49.63 / 14.07 / 0
#:   Tesla       0.00 /  0.00 /  1.65 / 98.35
#:   Volkswagen  0.00 /  3.08 / 83.08 / 13.85
#:   Waymo      10.13 / 53.45 / 36.42 / 0
#: (columns: ML-planner / ML-perception / System / Unknown-C).
FAULT_MIXTURES: dict[str, FaultMixture] = {
    "Delphi": _mixture("Delphi", {
        T.PLANNER: 22.00,
        T.INCORRECT_BEHAVIOR_PREDICTION: 9.00,
        T.DESIGN_BUG: 4.59,
        T.AV_CONTROLLER_DECISION: 2.00,
        T.RECOGNITION_SYSTEM: 34.00,
        T.ENVIRONMENT: 16.17,
        T.SOFTWARE: 6.00,
        T.COMPUTER_SYSTEM: 3.00,
        T.SENSOR: 2.00,
        T.NETWORK: 1.24,
    }),
    "Nissan": _mixture("Nissan", {
        T.PLANNER: 20.00,
        T.DESIGN_BUG: 9.00,
        T.INCORRECT_BEHAVIOR_PREDICTION: 5.30,
        T.AV_CONTROLLER_DECISION: 2.00,
        T.RECOGNITION_SYSTEM: 39.63,
        T.ENVIRONMENT: 10.00,
        T.SOFTWARE: 7.00,
        T.COMPUTER_SYSTEM: 4.00,
        T.SENSOR: 2.00,
        T.HANG_CRASH: 1.07,
    }),
    "Tesla": _mixture("Tesla", {
        T.SOFTWARE: 1.65,
        T.UNKNOWN: 98.35,
    }),
    "Volkswagen": _mixture("Volkswagen", {
        T.RECOGNITION_SYSTEM: 3.08,
        T.COMPUTER_SYSTEM: 38.00,
        T.SOFTWARE: 24.00,
        T.HANG_CRASH: 12.00,
        T.SENSOR: 5.00,
        T.AV_CONTROLLER_UNRESPONSIVE: 2.08,
        T.NETWORK: 2.00,
        T.UNKNOWN: 13.84,
    }),
    "Waymo": _mixture("Waymo", {
        T.PLANNER: 5.00,
        T.INCORRECT_BEHAVIOR_PREDICTION: 3.13,
        T.DESIGN_BUG: 2.00,
        T.RECOGNITION_SYSTEM: 36.00,
        T.ENVIRONMENT: 17.45,
        T.SOFTWARE: 19.00,
        T.COMPUTER_SYSTEM: 10.00,
        T.SENSOR: 3.00,
        T.HANG_CRASH: 2.00,
        T.AV_CONTROLLER_UNRESPONSIVE: 1.00,
        T.NETWORK: 1.42,
    }),
    # Not part of Table IV; representative mixtures chosen so the
    # pooled category shares land on the paper's headline numbers
    # (44% perception, 20% planner, ~33.6% system across all reported
    # disengagements excluding Tesla).
    "Mercedes-Benz": _mixture("Mercedes-Benz", {
        T.RECOGNITION_SYSTEM: 32.00,
        T.ENVIRONMENT: 13.00,
        T.PLANNER: 12.00,
        T.DESIGN_BUG: 5.00,
        T.INCORRECT_BEHAVIOR_PREDICTION: 3.00,
        T.SOFTWARE: 15.00,
        T.COMPUTER_SYSTEM: 10.00,
        T.SENSOR: 5.00,
        T.HANG_CRASH: 3.00,
        T.NETWORK: 2.00,
    }),
    "Bosch": _mixture("Bosch", {
        T.RECOGNITION_SYSTEM: 33.00,
        T.ENVIRONMENT: 13.00,
        T.PLANNER: 11.00,
        T.DESIGN_BUG: 8.00,
        T.SOFTWARE: 15.00,
        T.COMPUTER_SYSTEM: 10.00,
        T.SENSOR: 7.00,
        T.HANG_CRASH: 3.00,
    }),
    "GMCruise": _mixture("GMCruise", {
        T.RECOGNITION_SYSTEM: 34.00,
        T.ENVIRONMENT: 11.00,
        T.PLANNER: 15.00,
        T.INCORRECT_BEHAVIOR_PREDICTION: 4.00,
        T.DESIGN_BUG: 6.00,
        T.SOFTWARE: 14.00,
        T.COMPUTER_SYSTEM: 9.00,
        T.SENSOR: 5.00,
        T.HANG_CRASH: 2.00,
    }),
}

#: The five manufacturers Table IV actually reports.
TABLE4_MANUFACTURERS: tuple[str, ...] = (
    "Delphi", "Nissan", "Tesla", "Volkswagen", "Waymo")

#: Mixture for manufacturers with too few events to characterize (Ford,
#: BMW, Uber ATC, Honda): mostly uninformative log lines.
DEFAULT_MIXTURE = _mixture("(default)", {
    T.UNKNOWN: 60.00,
    T.RECOGNITION_SYSTEM: 15.00,
    T.PLANNER: 10.00,
    T.SOFTWARE: 10.00,
    T.SENSOR: 5.00,
})


def fault_mixture(manufacturer: str) -> FaultMixture:
    """Return the fault-tag mixture for ``manufacturer``.

    Manufacturers without a calibrated mixture (the ones the paper
    excludes for sparse data) fall back to :data:`DEFAULT_MIXTURE`.
    """
    return FAULT_MIXTURES.get(manufacturer, DEFAULT_MIXTURE)
