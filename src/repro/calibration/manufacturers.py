"""Fleet sizes, miles, and incident counts per manufacturer (Table I).

The CA DMV collects disengagement data in annual reporting periods; the
paper analyzes the 2016 release (covering roughly September 2014 through
November 2015) and the 2017 release (December 2015 through November
2016).  Table I reports, per manufacturer and period: number of cars,
autonomous miles, disengagements, and accidents.  Dashes in the paper
(absent data) are represented as ``None``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from datetime import date

from ..errors import CalibrationError


class ReportPeriod(enum.Enum):
    """The two DMV reporting periods covered by the study."""

    P2015_2016 = "2015-2016"
    P2016_2017 = "2016-2017"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Calendar coverage of each reporting period (inclusive month range).
PERIODS: dict[ReportPeriod, tuple[date, date]] = {
    ReportPeriod.P2015_2016: (date(2014, 9, 1), date(2015, 11, 30)),
    ReportPeriod.P2016_2017: (date(2015, 12, 1), date(2016, 11, 30)),
}


@dataclass(frozen=True)
class PeriodStats:
    """One manufacturer's Table I row for one reporting period.

    ``None`` reproduces the dashes in Table I: data the manufacturer did
    not report.  A manufacturer that did not test at all in a period has
    all four fields ``None``.
    """

    cars: int | None
    miles: float | None
    disengagements: int | None
    accidents: int | None

    @property
    def tested(self) -> bool:
        """Whether the manufacturer reported any activity this period."""
        return self.miles is not None and self.miles > 0


@dataclass(frozen=True)
class Manufacturer:
    """Static, paper-derived description of one AV manufacturer."""

    name: str
    periods: dict[ReportPeriod, PeriodStats]
    #: Whether the manufacturer reports per-event timestamps (some report
    #: month-granularity only, like Waymo's "May-16" entries).
    day_granularity: bool
    #: Whether the manufacturer reports driver reaction times.
    reports_reaction_times: bool
    #: Whether the manufacturer reports weather / road-type detail.
    reports_conditions: bool
    #: Whether the manufacturer is part of the paper's statistical
    #: analysis (Uber/BMW/Ford/Honda are excluded: too few events).
    analyzed: bool

    def stats(self, period: ReportPeriod) -> PeriodStats:
        """Return this manufacturer's Table I row for ``period``."""
        return self.periods[period]

    @property
    def total_miles(self) -> float:
        """Total autonomous miles across both periods (missing = 0)."""
        return sum(s.miles or 0.0 for s in self.periods.values())

    @property
    def total_disengagements(self) -> int:
        """Total disengagements across both periods (missing = 0)."""
        return sum(s.disengagements or 0 for s in self.periods.values())

    @property
    def total_accidents(self) -> int:
        """Total accidents across both periods (missing = 0)."""
        return sum(s.accidents or 0 for s in self.periods.values())

    @property
    def max_cars(self) -> int:
        """Largest reported fleet size across periods (missing = 0)."""
        return max((s.cars or 0 for s in self.periods.values()), default=0)


def _mk(name: str,
        p1: tuple[int | None, float | None, int | None, int | None],
        p2: tuple[int | None, float | None, int | None, int | None],
        *, day_granularity: bool = True, reaction_times: bool = False,
        conditions: bool = False, analyzed: bool = True) -> Manufacturer:
    return Manufacturer(
        name=name,
        periods={
            ReportPeriod.P2015_2016: PeriodStats(*p1),
            ReportPeriod.P2016_2017: PeriodStats(*p2),
        },
        day_granularity=day_granularity,
        reports_reaction_times=reaction_times,
        reports_conditions=conditions,
        analyzed=analyzed,
    )


#: Table I, verbatim.  Tuples are (cars, miles, disengagements, accidents).
MANUFACTURERS: dict[str, Manufacturer] = {
    m.name: m for m in [
        _mk("Mercedes-Benz",
            (2, 1739.08, 1024, None), (None, 673.41, 336, None),
            reaction_times=True, conditions=True),
        _mk("Bosch",
            (2, 935.1, 625, None), (3, 983.0, 1442, None),
            conditions=True),
        _mk("Delphi",
            (2, 16661.0, 405, 1), (2, 3090.0, 167, None),
            reaction_times=True, conditions=True),
        _mk("GMCruise",
            (None, 285.4, 135, None), (None, 9729.8, 149, 14)),
        _mk("Nissan",
            (4, 1485.4, 106, None), (3, 4099.0, 29, 1),
            reaction_times=True, conditions=True),
        _mk("Tesla",
            (None, None, None, None), (5, 550.0, 182, None),
            reaction_times=True),
        _mk("Volkswagen",
            (2, 14946.11, 260, None), (None, None, None, None),
            reaction_times=True),
        _mk("Waymo",
            (49, 424332.0, 341, 9), (70, 635868.0, 123, 16),
            day_granularity=False, reaction_times=True, conditions=True),
        _mk("Uber ATC",
            (None, None, None, None), (None, None, None, 1),
            analyzed=False),
        _mk("Honda",
            (None, None, None, None), (0, 0.0, 0, None),
            analyzed=False),
        _mk("Ford",
            (None, None, None, None), (2, 590.0, 3, None),
            analyzed=False),
        _mk("BMW",
            (None, None, None, None), (None, 638.0, 1, None),
            analyzed=False),
    ]
}

#: The eight manufacturers included in the paper's statistical analysis.
ANALYSIS_MANUFACTURERS: tuple[str, ...] = tuple(
    name for name, m in MANUFACTURERS.items() if m.analyzed)

#: Manufacturers the paper excludes for having too few events.
EXCLUDED_MANUFACTURERS: tuple[str, ...] = tuple(
    name for name, m in MANUFACTURERS.items() if not m.analyzed)


def get_manufacturer(name: str) -> Manufacturer:
    """Look up a manufacturer by name, raising ``CalibrationError``."""
    try:
        return MANUFACTURERS[name]
    except KeyError:
        known = ", ".join(sorted(MANUFACTURERS))
        raise CalibrationError(
            f"unknown manufacturer {name!r}; known: {known}") from None


def total_miles() -> float:
    """Cumulative autonomous miles across all manufacturers/periods."""
    return sum(m.total_miles for m in MANUFACTURERS.values())


def total_disengagements() -> int:
    """Total disengagements across all manufacturers/periods."""
    return sum(m.total_disengagements for m in MANUFACTURERS.values())


def total_accidents() -> int:
    """Total accidents across all manufacturers/periods."""
    return sum(m.total_accidents for m in MANUFACTURERS.values())
