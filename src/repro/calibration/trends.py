"""Per-manufacturer DPM trend parameters (Figs. 5, 8, and 9).

The paper finds a strong negative correlation between log(DPM) and
log(cumulative autonomous miles) — Pearson r = −0.87 pooled across
manufacturers — with manufacturer-specific slopes (Fig. 9): testing
"burns in" the ADS, so disengagements per mile fall as miles accumulate.
Bosch is the notable exception (its planned fault-injection campaign
intensified between periods, raising DPM).

The synthesizer models the *within-period* monthly disengagement rate as

    DPM(month) proportional to cumulative_miles(month) ** slope  (x noise)

and then allocates each period's exact Table I disengagement total
across months with those weights, so Table I is reproduced exactly while
Figs. 5/7/8/9 acquire the published shapes.  ``mileage_growth`` shapes
the monthly-mileage profile: monthly miles grow geometrically by that
factor month-over-month within a period (fleets scale up over time).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CalibrationError


@dataclass(frozen=True)
class DpmTrend:
    """DPM-vs-cumulative-miles trend for one manufacturer."""

    manufacturer: str
    #: Log-log slope of DPM vs. cumulative miles (negative = improving).
    slope: float
    #: Standard deviation of the log10-DPM noise around the trend.
    sigma: float
    #: Month-over-month geometric growth of miles driven.
    mileage_growth: float

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise CalibrationError(
                f"negative DPM noise for {self.manufacturer}")
        if self.mileage_growth <= 0:
            raise CalibrationError(
                f"non-positive mileage growth for {self.manufacturer}")


#: Trend parameters tuned so the pooled Pearson correlation between
#: log(DPM) and log(cumulative miles) lands near the paper's −0.87 and
#: per-manufacturer slopes qualitatively match Fig. 9.  Waymo improves
#: the most (the paper reports an ~8x median-DPM decrease over the three
#: calendar years); Bosch worsens (escalating planned fault injection).
DPM_TRENDS: dict[str, DpmTrend] = {
    "Mercedes-Benz": DpmTrend("Mercedes-Benz", -0.45, 0.25, 1.02),
    "Bosch": DpmTrend("Bosch", +0.25, 0.20, 1.01),
    "Delphi": DpmTrend("Delphi", -0.35, 0.25, 1.03),
    "GMCruise": DpmTrend("GMCruise", -0.80, 0.30, 1.18),
    "Nissan": DpmTrend("Nissan", -0.50, 0.25, 1.06),
    "Tesla": DpmTrend("Tesla", -0.40, 0.25, 1.05),
    "Volkswagen": DpmTrend("Volkswagen", -0.15, 0.20, 1.02),
    "Waymo": DpmTrend("Waymo", -0.55, 0.20, 1.04),
    # Excluded manufacturers still need mileage profiles for synthesis.
    "Uber ATC": DpmTrend("Uber ATC", -0.30, 0.25, 1.05),
    "Honda": DpmTrend("Honda", -0.30, 0.25, 1.00),
    "Ford": DpmTrend("Ford", -0.30, 0.25, 1.02),
    "BMW": DpmTrend("BMW", -0.30, 0.25, 1.02),
}


def dpm_trend(manufacturer: str) -> DpmTrend:
    """Return the DPM trend parameters for ``manufacturer``."""
    try:
        return DPM_TRENDS[manufacturer]
    except KeyError:
        known = ", ".join(sorted(DPM_TRENDS))
        raise CalibrationError(
            f"no DPM trend for {manufacturer!r}; known: {known}") from None
