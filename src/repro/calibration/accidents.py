"""Accident calibration (Table VI and Fig. 12).

Table VI lists the per-manufacturer accident counts and the derived
disengagements-per-accident (DPA).  Fig. 12 shows that collision speeds
are exponentially distributed and low: more than 80% of accidents occur
at a relative speed below 10 mph, in the vicinity of intersections on
urban streets, mostly rear-end or side-swipe collisions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CalibrationError


@dataclass(frozen=True)
class AccidentProfile:
    """Table VI row: accident count and DPA for one manufacturer."""

    manufacturer: str
    accidents: int
    #: Disengagements per accident; ``None`` when the paper shows a dash
    #: (Uber ATC reported an accident but no disengagement data).
    dpa: float | None

    def __post_init__(self) -> None:
        if self.accidents < 0:
            raise CalibrationError(
                f"negative accident count for {self.manufacturer}")


#: Table VI, verbatim.
ACCIDENT_PROFILES: dict[str, AccidentProfile] = {
    "Waymo": AccidentProfile("Waymo", 25, 18.0),
    "Delphi": AccidentProfile("Delphi", 1, 572.0),
    "Nissan": AccidentProfile("Nissan", 1, 135.0),
    "GMCruise": AccidentProfile("GMCruise", 14, 20.0),
    "Uber ATC": AccidentProfile("Uber ATC", 1, None),
}


@dataclass(frozen=True)
class CollisionSpeedModel:
    """Exponential collision-speed model (Fig. 12), in mph.

    ``av_scale``, ``mv_scale``, and ``relative_scale`` are the means of
    the exponential distributions of the AV's speed, the manual
    vehicle's speed, and the absolute speed difference at collision.
    ``max_av_speed``/``max_mv_speed`` truncate at the figure's axis
    ranges (all reported accidents were low-speed).
    """

    av_scale: float = 4.5
    mv_scale: float = 9.0
    relative_scale: float = 5.0
    max_av_speed: float = 30.0
    max_mv_speed: float = 40.0

    @property
    def fraction_relative_below_10mph(self) -> float:
        """P(relative speed < 10 mph) under the exponential model."""
        import math
        return 1.0 - math.exp(-10.0 / self.relative_scale)


#: The single speed model used for all synthesized accidents.  With a
#: 5 mph mean relative speed, P(<10 mph) = 86%, matching the paper's
#: ">80% of accidents below 10 mph relative speed".
SPEED_MODEL = CollisionSpeedModel()

#: Collision types observed in the reports (most were rear-end or
#: side-swipe; none caused serious injuries).
COLLISION_TYPES: tuple[str, ...] = (
    "rear-end", "side-swipe", "broadside", "object")

#: Weights for sampling collision types, aligned with the paper's
#: "most of the accidents were minor (either rear-end or side-swipe)".
COLLISION_TYPE_WEIGHTS: tuple[float, ...] = (0.60, 0.28, 0.08, 0.04)

#: Streets in Mountain View, CA used for synthesized accident locations
#: (the case studies place accidents near intersections on urban roads).
INTERSECTION_STREETS: tuple[str, ...] = (
    "South Shoreline Blvd", "El Camino Real", "Castro St", "Rengstorff Ave",
    "Middlefield Rd", "California St", "Grant Rd", "Clark Ave",
    "Moffett Blvd", "Villa St", "Church St", "Highschool Way",
)
