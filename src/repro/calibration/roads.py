"""Road-type distribution of autonomous testing miles (Sec. III-C).

The paper reports testing across 9 distinct road types: 31.7% on city
streets, 29.26% on highways, 14.63% on interstates, 9.75% on freeways,
and the remaining ~14.66% in parking lots and on suburban and rural
roads.
"""

from __future__ import annotations

import enum


class RoadType(enum.Enum):
    """Road types appearing in the disengagement reports."""

    CITY_STREET = "city street"
    HIGHWAY = "highway"
    INTERSTATE = "interstate"
    FREEWAY = "freeway"
    PARKING_LOT = "parking lot"
    SUBURBAN = "suburban"
    RURAL = "rural"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Share of autonomous miles per road type.  The paper's residual 14.66%
#: is split across parking lots, suburban, and rural roads.
ROAD_TYPE_SHARES: dict[RoadType, float] = {
    RoadType.CITY_STREET: 0.3170,
    RoadType.HIGHWAY: 0.2926,
    RoadType.INTERSTATE: 0.1463,
    RoadType.FREEWAY: 0.0975,
    RoadType.PARKING_LOT: 0.0466,
    RoadType.SUBURBAN: 0.0600,
    RoadType.RURAL: 0.0400,
}

#: Weather conditions reported by the manufacturers that log them.
WEATHER_CONDITIONS: tuple[str, ...] = (
    "Sunny/Dry", "Cloudy/Dry", "Overcast", "Raining/Wet", "Fog",
    "Clear/Night")

#: Sampling weights for weather (California is mostly dry).
WEATHER_WEIGHTS: tuple[float, ...] = (0.55, 0.15, 0.10, 0.10, 0.03, 0.07)
