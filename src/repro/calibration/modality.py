"""Disengagement modality mixtures per manufacturer (Table V).

A disengagement is initiated *automatically* by the ADS, *manually* by
the safety driver, or occurs during a *planned* fault-injection test
(Bosch and GMCruise report all of their disengagements as planned).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CalibrationError
from ..taxonomy import Modality


@dataclass(frozen=True)
class ModalityMixture:
    """Probability distribution over disengagement modalities."""

    manufacturer: str
    weights: dict[Modality, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        total = sum(self.weights.values())
        if abs(total - 1.0) > 1e-6:
            raise CalibrationError(
                f"modality mixture for {self.manufacturer} sums to {total}, "
                "expected 1.0")

    def share(self, modality: Modality) -> float:
        """Probability of ``modality`` for this manufacturer."""
        return self.weights.get(modality, 0.0)

    @property
    def all_planned(self) -> bool:
        """Whether the manufacturer reports only planned tests."""
        return self.share(Modality.PLANNED) >= 1.0 - 1e-9


def _mixture(manufacturer: str, automatic: float, manual: float,
             planned: float) -> ModalityMixture:
    return ModalityMixture(
        manufacturer=manufacturer,
        weights={
            Modality.AUTOMATIC: automatic / 100.0,
            Modality.MANUAL: manual / 100.0,
            Modality.PLANNED: planned / 100.0,
        },
    )


#: Table V, verbatim (percentages).  Waymo's row sums to 99.99 in the
#: paper; we assign the rounding residue to the automatic share.
MODALITY_MIXTURES: dict[str, ModalityMixture] = {
    "Mercedes-Benz": _mixture("Mercedes-Benz", 47.11, 52.89, 0.0),
    "Bosch": _mixture("Bosch", 0.0, 0.0, 100.0),
    "GMCruise": _mixture("GMCruise", 0.0, 0.0, 100.0),
    "Nissan": _mixture("Nissan", 54.2, 45.8, 0.0),
    "Tesla": _mixture("Tesla", 98.35, 1.65, 0.0),
    "Volkswagen": _mixture("Volkswagen", 100.0, 0.0, 0.0),
    "Waymo": _mixture("Waymo", 50.33, 49.67, 0.0),
    # Delphi is absent from Table V; assume an even automatic/manual
    # split for synthesis (the Table V bench prints the paper's rows).
    "Delphi": _mixture("Delphi", 50.0, 50.0, 0.0),
}

#: Manufacturers that appear in the paper's Table V.
TABLE5_MANUFACTURERS: tuple[str, ...] = (
    "Mercedes-Benz", "Bosch", "GMCruise", "Nissan", "Tesla",
    "Volkswagen", "Waymo")


#: Fallback for manufacturers absent from Table V (sparse reporters).
DEFAULT_MODALITY_MIXTURE = _mixture("(default)", 50.0, 50.0, 0.0)


def modality_mixture(manufacturer: str) -> ModalityMixture:
    """Return the modality mixture for ``manufacturer``.

    Manufacturers without a calibrated mixture fall back to an even
    automatic/manual split.
    """
    return MODALITY_MIXTURES.get(manufacturer, DEFAULT_MODALITY_MIXTURE)
