"""Cross-domain reliability baselines (Tables VII and VIII).

Scalar constants the paper takes from external sources: the human-driver
accident rate (NHTSA/FHWA), the airline accident rate per departure
(NTSB), the surgical-robot adverse-event rate per procedure (FDA MAUDE
analyses), and the median U.S. trip length used to convert per-mile
rates into per-mission rates.
"""

from __future__ import annotations

#: Human-driven vehicles: one accident every 500,000 miles
#: (NHTSA 2015 crash overview + FHWA traffic volume trends).
HUMAN_ACCIDENTS_PER_MILE = 2e-6

#: Airlines: 9.8 accidents per 100,000 departures (NTSB).
AIRLINE_ACCIDENTS_PER_MISSION = 9.8e-5

#: Surgical robots: 1,043 adverse events per 100,000 procedures.
SURGICAL_ROBOT_ACCIDENTS_PER_MISSION = 1.04e-2

#: Median length of a U.S. vehicle trip in miles (FHWA NHTS).
MEDIAN_TRIP_MILES = 10.0

#: Projected yearly AV trips if all cars become AVs (paper Sec. V-C1).
PROJECTED_AV_TRIPS_PER_YEAR = 96e9

#: Yearly airline departures used in the same comparison.
AIRLINE_TRIPS_PER_YEAR = 9.6e6

#: Median DPM per manufacturer as published in Table VII (per mile).
PAPER_MEDIAN_DPM: dict[str, float] = {
    "Mercedes-Benz": 0.565,
    "Volkswagen": 0.0181,
    "Waymo": 0.000745,
    "Delphi": 0.0263,
    "Nissan": 0.0413,
    "Bosch": 0.811,
    "GMCruise": 0.177,
    "Tesla": 0.250,
}

#: Median APM per manufacturer as published in Table VII (per mile).
PAPER_MEDIAN_APM: dict[str, float] = {
    "Waymo": 4.140e-5,
    "Delphi": 4.599e-5,
    "Nissan": 3.057e-4,
    "GMCruise": 8.843e-3,
}

#: APM relative to human drivers, Table VII column 4.
PAPER_APM_RELATIVE_TO_HUMAN: dict[str, float] = {
    "Waymo": 20.7,
    "Delphi": 22.99,
    "Nissan": 15.285,
    "GMCruise": 4421.5,
}

#: Accidents per mission (APMi) as published in Table VIII.
PAPER_APMI: dict[str, float] = {
    "Waymo": 4.140e-4,
    "Delphi": 4.599e-4,
    "Nissan": 3.057e-3,
    "GMCruise": 8.843e-2,
}

#: APMi relative to airlines, Table VIII column 3.
PAPER_APMI_VS_AIRLINE: dict[str, float] = {
    "Waymo": 4.22,
    "Delphi": 4.69,
    "Nissan": 31.19,
    "GMCruise": 902.34,
}

#: APMi relative to surgical robots, Table VIII column 4.
PAPER_APMI_VS_SURGICAL: dict[str, float] = {
    "Waymo": 0.0398,
    "Delphi": 0.0442,
    "Nissan": 0.293,
    "GMCruise": 8.502,
}
