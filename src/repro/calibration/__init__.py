"""Calibration constants extracted from the paper.

Everything the synthetic corpus generator and the benchmark harness need
to know about the paper's published aggregates lives here: fleet sizes
and counts (Table I), fault-tag mixtures (Table IV / Fig. 6), modality
mixtures (Table V), accident counts and DPA (Table VI), median DPM/APM
(Table VII), cross-domain baselines (Table VIII), reaction-time and
collision-speed distribution parameters (Figs. 10-12), road-type shares,
and per-manufacturer DPM trends (Figs. 5, 8, 9).
"""

from .manufacturers import (
    ANALYSIS_MANUFACTURERS,
    EXCLUDED_MANUFACTURERS,
    MANUFACTURERS,
    PERIODS,
    Manufacturer,
    PeriodStats,
    ReportPeriod,
    get_manufacturer,
    total_accidents,
    total_disengagements,
    total_miles,
)
from .fault_model import FAULT_MIXTURES, FaultMixture, fault_mixture
from .modality import MODALITY_MIXTURES, ModalityMixture, modality_mixture
from .reaction_times import (
    REACTION_TIME_MODELS,
    ReactionTimeModel,
    reaction_time_model,
)
from .accidents import (
    ACCIDENT_PROFILES,
    SPEED_MODEL,
    AccidentProfile,
    CollisionSpeedModel,
)
from .baselines import (
    AIRLINE_ACCIDENTS_PER_MISSION,
    HUMAN_ACCIDENTS_PER_MILE,
    MEDIAN_TRIP_MILES,
    SURGICAL_ROBOT_ACCIDENTS_PER_MISSION,
    PAPER_MEDIAN_APM,
    PAPER_MEDIAN_DPM,
)
from .roads import ROAD_TYPE_SHARES, RoadType
from .trends import DPM_TRENDS, DpmTrend, dpm_trend

__all__ = [
    "ANALYSIS_MANUFACTURERS",
    "EXCLUDED_MANUFACTURERS",
    "MANUFACTURERS",
    "PERIODS",
    "Manufacturer",
    "PeriodStats",
    "ReportPeriod",
    "get_manufacturer",
    "total_accidents",
    "total_disengagements",
    "total_miles",
    "FAULT_MIXTURES",
    "FaultMixture",
    "fault_mixture",
    "MODALITY_MIXTURES",
    "ModalityMixture",
    "modality_mixture",
    "REACTION_TIME_MODELS",
    "ReactionTimeModel",
    "reaction_time_model",
    "ACCIDENT_PROFILES",
    "SPEED_MODEL",
    "AccidentProfile",
    "CollisionSpeedModel",
    "AIRLINE_ACCIDENTS_PER_MISSION",
    "HUMAN_ACCIDENTS_PER_MILE",
    "MEDIAN_TRIP_MILES",
    "SURGICAL_ROBOT_ACCIDENTS_PER_MISSION",
    "PAPER_MEDIAN_APM",
    "PAPER_MEDIAN_DPM",
    "ROAD_TYPE_SHARES",
    "RoadType",
    "DPM_TRENDS",
    "DpmTrend",
    "dpm_trend",
]
