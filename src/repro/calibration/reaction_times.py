"""Driver reaction-time distribution parameters (Figs. 10 and 11).

The paper observes a mean reaction time of ~0.85 s across all test
drivers, long-tailed distributions well fit by an exponentiated Weibull,
and manufacturer-specific spreads: Waymo's reaction times concentrate
below ~4 s, Mercedes-Benz's tail stretches past 20 s, and Volkswagen
reported one implausible ~4-hour outlier.  Reaction time correlates
weakly but positively with cumulative miles driven (Waymo r=0.19,
Mercedes-Benz r=0.11): drivers relax as the system improves.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CalibrationError

#: Mean reaction time across all manufacturers (seconds), paper Sec V-A4.
OVERALL_MEAN_REACTION_TIME_S = 0.85

#: Braking reaction time for drivers of conventional vehicles [35].
NON_AV_BRAKING_REACTION_TIME_S = 0.82

#: Added reaction time when the driver owns the vehicle [35].
OWNERSHIP_REACTION_TIME_PENALTY_S = 0.27

#: The paper's assumed average human response time on the road.
ASSUMED_HUMAN_REACTION_TIME_S = 1.09


@dataclass(frozen=True)
class ReactionTimeModel:
    """Exponentiated-Weibull reaction-time model for one manufacturer.

    The density is that of :func:`scipy.stats.exponweib` with shape
    parameters ``a`` (exponentiation) and ``c`` (Weibull shape) and the
    given ``scale`` (seconds).  ``drift_per_log_mile`` adds a slow
    upward trend in log-cumulative-miles, reproducing the positive
    correlation between reaction time and miles driven.
    ``outlier_seconds`` optionally injects a single extreme value
    (Volkswagen's ~4-hour report).
    """

    manufacturer: str
    a: float
    c: float
    scale: float
    drift_per_log_mile: float = 0.0
    #: Log10-miles value at which the drift contributes zero, so the
    #: drift tilts the distribution without shifting its mean.
    drift_reference_log_miles: float = 0.0
    outlier_seconds: float | None = None

    def __post_init__(self) -> None:
        if min(self.a, self.c, self.scale) <= 0:
            raise CalibrationError(
                f"reaction-time model for {self.manufacturer} has "
                "non-positive shape/scale")


#: Only some manufacturers report reaction times (Fig. 10 shows Nissan,
#: Tesla, Delphi, Mercedes-Benz, Volkswagen, and Waymo).  Scales are
#: tuned so pooled means land near the paper's 0.85 s with the reported
#: per-manufacturer spreads.
REACTION_TIME_MODELS: dict[str, ReactionTimeModel] = {
    "Nissan": ReactionTimeModel("Nissan", a=1.2, c=1.4, scale=0.62),
    "Tesla": ReactionTimeModel("Tesla", a=1.1, c=1.3, scale=0.50),
    "Delphi": ReactionTimeModel("Delphi", a=1.3, c=1.2, scale=0.62),
    "Mercedes-Benz": ReactionTimeModel(
        "Mercedes-Benz", a=1.1, c=0.85, scale=0.90,
        drift_per_log_mile=0.30, drift_reference_log_miles=2.9),
    "Volkswagen": ReactionTimeModel(
        "Volkswagen", a=1.2, c=1.1, scale=0.60,
        outlier_seconds=14280.0),
    "Waymo": ReactionTimeModel(
        "Waymo", a=1.4, c=1.6, scale=0.55,
        drift_per_log_mile=0.18, drift_reference_log_miles=5.1),
}


def reaction_time_model(manufacturer: str) -> ReactionTimeModel | None:
    """Return the reaction-time model, or ``None`` if not reported."""
    return REACTION_TIME_MODELS.get(manufacturer)


def has_reaction_times(manufacturer: str) -> bool:
    """Whether ``manufacturer`` reports reaction times at all."""
    return manufacturer in REACTION_TIME_MODELS
