"""Unit and quantity helpers shared across the pipeline.

The DMV reports mix units and formats freely: miles vs. kilometres,
"0.8 sec" vs. "0.5-1.0 s" ranges vs. "less than 1 second", 12-hour vs.
24-hour clock times.  This module centralizes the coercions so every
parser normalizes identically.
"""

from __future__ import annotations

import re
from datetime import date, datetime

from .errors import FieldCoercionError

MILES_PER_KM = 0.621371

_NUMBER_RE = re.compile(r"[-+]?\d*\.?\d+(?:[eE][-+]?\d+)?")

_DURATION_UNITS = {
    "ms": 1e-3,
    "msec": 1e-3,
    "millisecond": 1e-3,
    "milliseconds": 1e-3,
    "s": 1.0,
    "sec": 1.0,
    "secs": 1.0,
    "second": 1.0,
    "seconds": 1.0,
    "m": 60.0,
    "min": 60.0,
    "mins": 60.0,
    "minute": 60.0,
    "minutes": 60.0,
    "h": 3600.0,
    "hr": 3600.0,
    "hrs": 3600.0,
    "hour": 3600.0,
    "hours": 3600.0,
}

_DATE_FORMATS = (
    "%m/%d/%y",
    "%m/%d/%Y",
    "%Y-%m-%d",
    "%b-%y",
    "%B %d, %Y",
    "%d %b %Y",
    "%m-%d-%Y",
)

_TIME_FORMATS = (
    "%H:%M:%S",
    "%H:%M",
    "%I:%M %p",
    "%I:%M:%S %p",
    "%I%p",
)


def parse_number(text: str) -> float:
    """Extract the first numeric value from ``text``.

    Commas used as thousands separators are removed first, so
    ``"1,116,605 miles"`` parses to ``1116605.0``.
    """
    cleaned = text.replace(",", "")
    match = _NUMBER_RE.search(cleaned)
    if match is None:
        raise FieldCoercionError(f"no number found in {text!r}", line=text)
    return float(match.group())


def parse_miles(text: str) -> float:
    """Parse a distance expressed in miles or kilometres into miles."""
    value = parse_number(text)
    lowered = text.lower()
    if "km" in lowered or "kilometer" in lowered or "kilometre" in lowered:
        return value * MILES_PER_KM
    return value


def parse_mph(text: str) -> float:
    """Parse a speed in mph (or km/h, converted) into mph."""
    value = parse_number(text)
    lowered = text.lower()
    if "km/h" in lowered or "kph" in lowered or "kmh" in lowered:
        return value * MILES_PER_KM
    return value


def parse_duration_seconds(text: str) -> float:
    """Parse a duration like ``"0.8 sec"`` or ``"2 min"`` into seconds.

    Ranges such as ``"0.5-1.0 s"`` are resolved to their *upper* bound,
    following the paper's convention ("we assume the reaction times to be
    upper bounded where they are listed as ranges").  Qualitative phrases
    like ``"less than 1 second"`` also resolve to the stated bound.
    """
    lowered = text.strip().lower()
    if not lowered:
        raise FieldCoercionError("empty duration", line=text)
    cleaned = lowered.replace(",", "")
    # A hyphen between digits is a range separator, not a sign.
    cleaned = re.sub(r"(?<=\d)\s*-\s*(?=[\d.])", " ", cleaned)
    numbers = [float(m.group()) for m in _NUMBER_RE.finditer(cleaned)]
    if not numbers:
        raise FieldCoercionError(f"no duration found in {text!r}", line=text)
    value = max(numbers)
    unit_match = re.search(r"([a-z]+)\s*$", cleaned)
    multiplier = 1.0
    if unit_match is not None:
        unit = unit_match.group(1)
        if unit in _DURATION_UNITS:
            multiplier = _DURATION_UNITS[unit]
    else:
        for unit, factor in _DURATION_UNITS.items():
            if re.search(rf"\b{unit}\b", cleaned):
                multiplier = factor
                break
    return value * multiplier


def parse_date(text: str) -> date:
    """Parse a date in any of the formats seen across manufacturer reports."""
    cleaned = text.strip()
    for fmt in _DATE_FORMATS:
        try:
            return datetime.strptime(cleaned, fmt).date()
        except ValueError:
            continue
    raise FieldCoercionError(f"unrecognized date {text!r}", line=text)


def parse_time_of_day(text: str) -> tuple[int, int, int]:
    """Parse a wall-clock time into an ``(hour, minute, second)`` tuple."""
    cleaned = " ".join(text.strip().upper().split())
    for fmt in _TIME_FORMATS:
        try:
            parsed = datetime.strptime(cleaned, fmt)
        except ValueError:
            continue
        return parsed.hour, parsed.minute, parsed.second
    raise FieldCoercionError(f"unrecognized time {text!r}", line=text)


def month_key(value: date) -> str:
    """Return the canonical ``YYYY-MM`` key for a date."""
    return f"{value.year:04d}-{value.month:02d}"


def months_between(start: date, end: date) -> list[str]:
    """Return the inclusive list of ``YYYY-MM`` keys between two dates."""
    if (end.year, end.month) < (start.year, start.month):
        raise FieldCoercionError(
            f"end month {end} precedes start month {start}")
    keys = []
    year, month = start.year, start.month
    while (year, month) <= (end.year, end.month):
        keys.append(f"{year:04d}-{month:02d}")
        month += 1
        if month == 13:
            month = 1
            year += 1
    return keys
