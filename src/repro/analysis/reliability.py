"""Mission-level reliability modeling (paper Sec. V-C2).

The paper proposes "miles driven to disengagement/accident" as the
cross-transportation reliability metric, since operational hours are
unavailable for cars.  This module builds the full per-mission model on
top of it: disengagements and accidents as Poisson processes in miles,
mission survival probabilities, and the trip-length sensitivity of the
AV-vs-airline comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..calibration.baselines import (
    AIRLINE_ACCIDENTS_PER_MISSION,
    MEDIAN_TRIP_MILES,
)
from ..errors import InsufficientDataError
from ..pipeline.store import FailureDatabase


@dataclass(frozen=True)
class MissionModel:
    """Poisson-in-miles reliability model for one manufacturer."""

    manufacturer: str
    #: Events per mile (maximum-likelihood point estimates).
    dpm: float
    apm: float | None

    def p_disengagement_free(self, trip_miles: float) -> float:
        """P(no disengagement on a trip of ``trip_miles``)."""
        _check_trip(trip_miles)
        return math.exp(-self.dpm * trip_miles)

    def p_accident_free(self, trip_miles: float) -> float | None:
        """P(no accident on a trip), ``None`` without accident data."""
        _check_trip(trip_miles)
        if self.apm is None:
            return None
        return math.exp(-self.apm * trip_miles)

    def expected_disengagements(self, trip_miles: float) -> float:
        """Expected disengagements on one trip."""
        _check_trip(trip_miles)
        return self.dpm * trip_miles

    def miles_between_disengagements(self) -> float:
        """Mean miles between disengagements (the paper's proposed
        metric)."""
        if self.dpm <= 0:
            raise InsufficientDataError(
                f"{self.manufacturer}: no disengagements observed")
        return 1.0 / self.dpm

    def miles_between_accidents(self) -> float | None:
        """Mean miles between accidents, ``None`` without data."""
        if self.apm is None or self.apm <= 0:
            return None
        return 1.0 / self.apm

    def trips_to_first_accident(self,
                                trip_miles: float = MEDIAN_TRIP_MILES,
                                ) -> float | None:
        """Expected trips until the first accident (geometric mean)."""
        p_free = self.p_accident_free(trip_miles)
        if p_free is None or p_free >= 1.0:
            return None
        return 1.0 / (1.0 - p_free)


def _check_trip(trip_miles: float) -> None:
    if trip_miles <= 0:
        raise InsufficientDataError(
            f"trip length {trip_miles} must be positive")


def build_mission_model(db: FailureDatabase,
                        manufacturer: str) -> MissionModel:
    """Fit the Poisson model from a manufacturer's database slice."""
    miles = db.miles_by_manufacturer().get(manufacturer, 0.0)
    if miles <= 0:
        raise InsufficientDataError(
            f"{manufacturer}: no autonomous miles in the database")
    disengagements = len(
        db.disengagements_by_manufacturer().get(manufacturer, []))
    accidents = len(
        db.accidents_by_manufacturer().get(manufacturer, []))
    return MissionModel(
        manufacturer=manufacturer,
        dpm=disengagements / miles,
        apm=accidents / miles if accidents else None,
    )


def crossover_trip_length(model: MissionModel) -> float | None:
    """Trip length at which the AV's per-mission accident risk equals
    the airline per-departure rate.

    The paper compares at the 10-mile median trip; because the AV risk
    scales with trip length while the airline rate is per departure,
    there is a crossover below which the AV is the safer mission.
    """
    if model.apm is None or model.apm <= 0:
        return None
    # Solve 1 - exp(-apm * L) = airline rate.
    return -math.log(1.0 - AIRLINE_ACCIDENTS_PER_MISSION) / model.apm


def mission_survival_curve(model: MissionModel,
                           trip_lengths: list[float],
                           ) -> list[tuple[float, float, float | None]]:
    """(trip length, P(disengagement-free), P(accident-free)) series."""
    return [(length,
             model.p_disengagement_free(length),
             model.p_accident_free(length))
            for length in trip_lengths]
