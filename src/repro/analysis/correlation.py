"""Pearson correlation with significance testing.

Used for the paper's headline r = -0.87 (p = 7e-56) between log(DPM)
and log(cumulative miles), and the reaction-time-vs-miles
correlations of Section V-A4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sstats

from ..errors import InsufficientDataError


@dataclass(frozen=True)
class CorrelationResult:
    """A Pearson correlation and its two-sided p-value."""

    r: float
    p_value: float
    n: int

    def significant(self, alpha: float = 0.01) -> bool:
        """Whether the correlation is significant at level ``alpha``."""
        return self.p_value < alpha


def pearson(x: list[float] | np.ndarray,
            y: list[float] | np.ndarray) -> CorrelationResult:
    """Pearson correlation of ``(x, y)`` with its p-value."""
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.size != ya.size:
        raise InsufficientDataError(
            f"x and y lengths differ: {xa.size} vs {ya.size}")
    if xa.size < 3:
        raise InsufficientDataError(
            "need at least 3 points for a correlation test")
    if np.allclose(xa, xa[0]) or np.allclose(ya, ya[0]):
        raise InsufficientDataError("a variable is constant")
    result = sstats.pearsonr(xa, ya)
    return CorrelationResult(
        r=float(result.statistic), p_value=float(result.pvalue),
        n=int(xa.size))


def log_pearson(x: list[float] | np.ndarray,
                y: list[float] | np.ndarray) -> CorrelationResult:
    """Pearson correlation of ``(log10 x, log10 y)``, positive pairs only."""
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    mask = (xa > 0) & (ya > 0)
    if mask.sum() < 3:
        raise InsufficientDataError(
            "need at least 3 positive points for a log correlation")
    return pearson(np.log10(xa[mask]), np.log10(ya[mask]))
