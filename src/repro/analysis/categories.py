"""Fault categorization: Question 2, Tables IV-V, Fig. 6.

Operates on the NLP-assigned tags of the consolidated database (pass
``use_truth=True`` to validate against the synthesizer's ground
truth).
"""

from __future__ import annotations

from collections import Counter, defaultdict

from ..pipeline.store import FailureDatabase
from ..taxonomy import (
    FailureCategory,
    FaultTag,
    Modality,
    MlSubcategory,
    category_of,
    ml_subcategory_of,
)


def _tag_of(record, use_truth: bool) -> FaultTag | None:
    return record.truth_tag if use_truth else record.tag


def tag_fractions(db: FailureDatabase,
                  manufacturers: list[str] | None = None,
                  use_truth: bool = False,
                  ) -> dict[str, dict[str, float]]:
    """Fig. 6: fraction of disengagements per fault tag (display name).

    The two AV Controller tags collapse to one display name, as in the
    figure's legend.
    """
    names = manufacturers if manufacturers is not None \
        else db.manufacturers()
    out: dict[str, dict[str, float]] = {}
    for name in names:
        counts: Counter = Counter()
        total = 0
        for tag in db.tag_values(name, use_truth):
            counts[tag.display_name] += 1
            total += 1
        if total:
            out[name] = {tag: count / total
                         for tag, count in sorted(counts.items())}
    return out


def category_percentages(db: FailureDatabase,
                         manufacturers: list[str] | None = None,
                         use_truth: bool = False,
                         ) -> dict[str, dict[str, float]]:
    """Table IV: percentage per root failure category.

    Columns: ``ML-Planner/Controller``, ``ML-Perception/Recognition``,
    ``System``, ``Unknown-C`` (percentages summing to ~100 per row).
    """
    names = manufacturers if manufacturers is not None \
        else db.manufacturers()
    out: dict[str, dict[str, float]] = {}
    for name in names:
        counts = {"ML-Planner/Controller": 0,
                  "ML-Perception/Recognition": 0,
                  "System": 0, "Unknown-C": 0}
        total = 0
        for tag in db.tag_values(name, use_truth):
            total += 1
            category = category_of(tag)
            if category is FailureCategory.ML_DESIGN:
                sub = ml_subcategory_of(tag)
                if sub is MlSubcategory.PLANNER:
                    counts["ML-Planner/Controller"] += 1
                else:
                    counts["ML-Perception/Recognition"] += 1
            elif category is FailureCategory.SYSTEM:
                counts["System"] += 1
            else:
                counts["Unknown-C"] += 1
        if total:
            out[name] = {key: 100.0 * value / total
                         for key, value in counts.items()}
    return out


def overall_category_shares(db: FailureDatabase,
                            exclude: tuple[str, ...] = ("Tesla",),
                            use_truth: bool = False) -> dict[str, float]:
    """Headline shares across manufacturers (paper Sec. V-A2).

    Tesla is excluded by default, as in the paper ("we ignore the
    numbers for Tesla, as most of their categorical labels are marked
    Unknown-C").  Returns fractions for perception, planner, system,
    unknown, and the combined ML/Design share (the 64% claim).
    """
    counts = Counter()
    total = 0
    for record in db.disengagements:
        if record.manufacturer in exclude:
            continue
        tag = _tag_of(record, use_truth)
        if tag is None:
            continue
        total += 1
        category = category_of(tag)
        if category is FailureCategory.ML_DESIGN:
            sub = ml_subcategory_of(tag)
            key = ("planner" if sub is MlSubcategory.PLANNER
                   else "perception")
        elif category is FailureCategory.SYSTEM:
            key = "system"
        else:
            key = "unknown"
        counts[key] += 1
    if not total:
        return {}
    shares = {key: counts[key] / total
              for key in ("perception", "planner", "system", "unknown")}
    shares["ml_design"] = shares["perception"] + shares["planner"]
    return shares


def modality_percentages(db: FailureDatabase,
                         manufacturers: list[str] | None = None,
                         ) -> dict[str, dict[str, float]]:
    """Table V: percentage per modality (automatic/manual/planned)."""
    names = manufacturers if manufacturers is not None \
        else db.manufacturers()
    out: dict[str, dict[str, float]] = {}
    for name in names:
        counts = {modality: 0 for modality in Modality}
        total = 0
        for modality in db.modality_values(name):
            counts[modality] += 1
            total += 1
        if total:
            out[name] = {modality.value: 100.0 * count / total
                         for modality, count in counts.items()}
    return out


def automatic_share(db: FailureDatabase,
                    weighted: bool = False) -> float:
    """Average share of disengagements initiated automatically.

    The paper's ~48% is the unweighted average of the Table V
    automatic percentages across manufacturers ("note that this
    measurement is biased by manufacturers like Mercedes-Benz and
    Waymo that report a larger number of disengagements").  Pass
    ``weighted=True`` for the event-weighted share instead.
    """
    if weighted:
        automatic = 0
        total = 0
        for record in db.disengagements:
            if record.modality in (Modality.AUTOMATIC, Modality.MANUAL):
                total += 1
                if record.modality is Modality.AUTOMATIC:
                    automatic += 1
        return automatic / total if total else 0.0
    shares = [row[Modality.AUTOMATIC.value] / 100.0
              for row in modality_percentages(db).values()]
    return sum(shares) / len(shares) if shares else 0.0


def tags_by_manufacturer(db: FailureDatabase,
                         use_truth: bool = False,
                         ) -> dict[str, Counter]:
    """Raw tag counts per manufacturer (support for Fig. 6 tests)."""
    out: dict[str, Counter] = defaultdict(Counter)
    for record in db.disengagements:
        tag = _tag_of(record, use_truth)
        if tag is not None:
            out[record.manufacturer][tag] += 1
    return dict(out)
