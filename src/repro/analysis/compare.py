"""Database-to-database comparison ("what changed since last year").

Diffs two failure databases — e.g. two report years, two corpus seeds,
or before/after a pipeline change — per manufacturer and overall, in
the metrics the paper tracks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InsufficientDataError
from ..pipeline.store import FailureDatabase


@dataclass(frozen=True)
class MetricDelta:
    """One metric's change between two databases."""

    metric: str
    before: float | None
    after: float | None

    @property
    def absolute(self) -> float | None:
        """after - before, None when either side is missing."""
        if self.before is None or self.after is None:
            return None
        return self.after - self.before

    @property
    def relative(self) -> float | None:
        """(after - before) / before, None when undefined."""
        if self.before in (None, 0) or self.after is None:
            return None
        return (self.after - self.before) / self.before

    @property
    def direction(self) -> str:
        """"up", "down", "flat", or "n/a"."""
        delta = self.absolute
        if delta is None:
            return "n/a"
        if abs(delta) < 1e-12:
            return "flat"
        return "up" if delta > 0 else "down"


@dataclass(frozen=True)
class ManufacturerDiff:
    """All tracked metric deltas for one manufacturer."""

    manufacturer: str
    deltas: tuple[MetricDelta, ...]

    def delta(self, metric: str) -> MetricDelta:
        """Look up one metric's delta."""
        for item in self.deltas:
            if item.metric == metric:
                return item
        raise InsufficientDataError(
            f"{self.manufacturer}: no metric {metric!r}")

    @property
    def improving(self) -> bool | None:
        """Whether aggregate DPM fell (the paper's notion of
        improvement); None without data on both sides."""
        delta = self.delta("dpm").absolute
        if delta is None:
            return None
        return delta < 0


def _manufacturer_metrics(db: FailureDatabase,
                          name: str) -> dict[str, float | None]:
    miles = db.miles_by_manufacturer().get(name, 0.0)
    records = db.disengagements_by_manufacturer().get(name, [])
    accidents = db.accidents_by_manufacturer().get(name, [])
    reaction_times = [t for t in db.reaction_times(name) if t < 600]
    return {
        "miles": miles or None,
        "disengagements": float(len(records)) if records else None,
        "accidents": float(len(accidents)) if accidents else None,
        "dpm": (len(records) / miles) if miles > 0 and records
        else None,
        "apm": (len(accidents) / miles) if miles > 0 and accidents
        else None,
        "mean_reaction_s": (sum(reaction_times) / len(reaction_times))
        if reaction_times else None,
    }


def diff_databases(before: FailureDatabase, after: FailureDatabase,
                   manufacturers: list[str] | None = None,
                   ) -> dict[str, ManufacturerDiff]:
    """Per-manufacturer metric deltas between two databases."""
    names = manufacturers if manufacturers is not None else sorted(
        set(before.manufacturers()) | set(after.manufacturers()))
    out: dict[str, ManufacturerDiff] = {}
    for name in names:
        metrics_before = _manufacturer_metrics(before, name)
        metrics_after = _manufacturer_metrics(after, name)
        deltas = tuple(
            MetricDelta(metric=metric,
                        before=metrics_before[metric],
                        after=metrics_after[metric])
            for metric in metrics_before)
        out[name] = ManufacturerDiff(manufacturer=name, deltas=deltas)
    return out


def split_by_period(db: FailureDatabase,
                    ) -> tuple[FailureDatabase, FailureDatabase]:
    """Split one database into the two DMV reporting periods.

    Gives the natural before/after pair for
    :func:`diff_databases` — the year-over-year story the DMV
    releases tell.
    """
    from ..calibration.manufacturers import PERIODS, ReportPeriod
    from ..units import months_between

    first_months = set(months_between(
        *PERIODS[ReportPeriod.P2015_2016]))
    first = FailureDatabase()
    second = FailureDatabase()
    for record in db.disengagements:
        target = first if record.month in first_months else second
        target.disengagements.append(record)
    for accident in db.accidents:
        target = first if (accident.month in first_months) else second
        target.accidents.append(accident)
    for cell in db.mileage:
        target = first if cell.month in first_months else second
        target.mileage.append(cell)
    return first, second
