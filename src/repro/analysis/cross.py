"""Cross-manufacturer comparisons with significance.

Fig. 4 compares DPM distributions visually; this module makes the
comparisons statistical: pairwise Mann-Whitney U tests over the
per-unit DPM samples, Cliff's delta effect sizes, and a ranking with
significance annotations ("Waymo does ~100x better" becomes a tested
claim).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sstats

from ..errors import InsufficientDataError
from ..pipeline.store import FailureDatabase
from .dpm import per_unit_dpm


@dataclass(frozen=True)
class PairwiseComparison:
    """One manufacturer-vs-manufacturer DPM comparison."""

    left: str
    right: str
    #: Mann-Whitney U two-sided p-value.
    p_value: float
    #: Cliff's delta in [-1, 1]; negative means ``left`` has lower
    #: DPM (is more reliable).
    cliffs_delta: float
    #: Ratio of median DPMs (left / right).
    median_ratio: float

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the distributions differ at level ``alpha``."""
        return self.p_value < alpha

    @property
    def effect(self) -> str:
        """Conventional effect-size label for |delta|."""
        magnitude = abs(self.cliffs_delta)
        if magnitude < 0.147:
            return "negligible"
        if magnitude < 0.33:
            return "small"
        if magnitude < 0.474:
            return "medium"
        return "large"


def cliffs_delta(left: list[float], right: list[float]) -> float:
    """Cliff's delta: P(L > R) - P(L < R) over all pairs."""
    if not left or not right:
        raise InsufficientDataError("both samples must be non-empty")
    left_array = np.asarray(left)[:, None]
    right_array = np.asarray(right)[None, :]
    greater = float(np.sum(left_array > right_array))
    less = float(np.sum(left_array < right_array))
    return (greater - less) / (len(left) * len(right))


def _dpm_samples(db: FailureDatabase, manufacturer: str,
                 minimum: int = 5) -> list[float]:
    """Per-unit DPM samples; small fleets fall back to monthly DPM
    (two cars give two per-car samples — not enough to test on)."""
    from .dpm import monthly_series

    _, dpm = per_unit_dpm(db, manufacturer)
    values = list(dpm.values())
    if len(values) < minimum:
        values = [p.dpm for p in monthly_series(db, manufacturer)
                  if p.miles > 0]
    return values


def compare_pair(db: FailureDatabase, left: str, right: str,
                 ) -> PairwiseComparison:
    """Compare two manufacturers' DPM distributions."""
    left_values = _dpm_samples(db, left)
    right_values = _dpm_samples(db, right)
    if len(left_values) < 3 or len(right_values) < 3:
        raise InsufficientDataError(
            f"too few units: {left}={len(left_values)}, "
            f"{right}={len(right_values)}")
    test = sstats.mannwhitneyu(left_values, right_values,
                               alternative="two-sided")
    left_median = float(np.median(left_values))
    right_median = float(np.median(right_values))
    ratio = (left_median / right_median if right_median > 0
             else float("inf"))
    return PairwiseComparison(
        left=left, right=right,
        p_value=float(test.pvalue),
        cliffs_delta=cliffs_delta(left_values, right_values),
        median_ratio=ratio,
    )


def dominance_matrix(db: FailureDatabase,
                     manufacturers: list[str],
                     ) -> dict[tuple[str, str], PairwiseComparison]:
    """All pairwise comparisons among ``manufacturers``."""
    out = {}
    for i, left in enumerate(manufacturers):
        for right in manufacturers[i + 1:]:
            try:
                out[(left, right)] = compare_pair(db, left, right)
            except InsufficientDataError:
                continue
    return out


def reliability_ranking(db: FailureDatabase,
                        manufacturers: list[str],
                        alpha: float = 0.05,
                        ) -> list[tuple[str, float, int]]:
    """Manufacturers ranked by median DPM, with the number of
    significantly-worse competitors each one beats."""
    medians = {}
    for name in manufacturers:
        try:
            _, dpm = per_unit_dpm(db, name)
        except InsufficientDataError:
            continue
        if dpm:
            medians[name] = float(np.median(list(dpm.values())))
    matrix = dominance_matrix(db, list(medians))
    wins = {name: 0 for name in medians}
    for (left, right), comparison in matrix.items():
        if not comparison.significant(alpha):
            continue
        if comparison.cliffs_delta < 0:
            wins[left] += 1
        elif comparison.cliffs_delta > 0:
            wins[right] += 1
    return sorted(((name, median, wins[name])
                   for name, median in medians.items()),
                  key=lambda item: item[1])
