"""Threats-to-validity tooling (paper Section VI).

Three quantitative instruments:

* **Underreporting sensitivity** — the paper cannot bound how much
  manufacturers underreport; this sweep scales the observed
  disengagement counts by candidate underreporting factors and
  recomputes the headline metrics, showing which conclusions are
  robust to it.
* **Bootstrap confidence intervals** — resampling-based CIs for the
  medians and correlations the paper reports as point estimates.
* **Seed sensitivity** — rerun the full pipeline across corpus seeds
  and summarize the spread of each headline metric (our synthetic
  analogue of replication studies across datasets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import InsufficientDataError
from ..pipeline.store import FailureDatabase
from ..rng import child_generator


@dataclass(frozen=True)
class SweepPoint:
    """One point of the underreporting sweep."""

    factor: float
    dpm_scale: float
    still_worse_than_human: bool


def underreporting_sweep(db: FailureDatabase,
                         factors: Sequence[float] = (1.0, 1.5, 2.0, 5.0),
                         ) -> list[SweepPoint]:
    """Scale disengagement counts by underreporting factors.

    DPM scales linearly with the factor; the check records whether the
    AV-vs-human APM conclusion would survive even if accidents were
    *not* underreported (the conservative direction: more
    disengagements per accident, same accidents per mile).
    """
    from ..calibration.baselines import HUMAN_ACCIDENTS_PER_MILE
    from .apm import first_principles_apm

    apm = first_principles_apm(db)
    if not apm:
        raise InsufficientDataError("no accident-attributable miles")
    worst = min(apm.values())
    points = []
    for factor in factors:
        if factor <= 0:
            raise InsufficientDataError(
                f"non-positive underreporting factor {factor}")
        points.append(SweepPoint(
            factor=factor,
            dpm_scale=factor,
            # Accident counts are reported within 10 business days and
            # are far harder to hide; APM is factor-independent.
            still_worse_than_human=worst > HUMAN_ACCIDENTS_PER_MILE,
        ))
    return points


@dataclass(frozen=True)
class BootstrapResult:
    """A bootstrap confidence interval for a statistic."""

    statistic: float
    low: float
    high: float
    confidence: float
    resamples: int

    def contains(self, value: float) -> bool:
        """Whether ``value`` falls inside the interval."""
        return self.low <= value <= self.high


def bootstrap_ci(values: Sequence[float],
                 statistic: Callable[[np.ndarray], float] = np.median,
                 confidence: float = 0.95, resamples: int = 2000,
                 seed: int = 0) -> BootstrapResult:
    """Percentile-bootstrap CI for ``statistic`` over ``values``."""
    array = np.asarray(values, dtype=float)
    if array.size < 2:
        raise InsufficientDataError(
            "need at least 2 observations to bootstrap")
    if not 0.0 < confidence < 1.0:
        raise InsufficientDataError(
            f"confidence {confidence} outside (0, 1)")
    rng = child_generator(seed, "bootstrap")
    stats = np.empty(resamples)
    for i in range(resamples):
        sample = array[rng.integers(0, array.size, array.size)]
        stats[i] = statistic(sample)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapResult(
        statistic=float(statistic(array)),
        low=float(np.quantile(stats, alpha)),
        high=float(np.quantile(stats, 1.0 - alpha)),
        confidence=confidence,
        resamples=resamples,
    )


def median_dpm_ci(db: FailureDatabase, manufacturer: str,
                  confidence: float = 0.95) -> BootstrapResult:
    """Bootstrap CI for one manufacturer's median per-unit DPM."""
    from .dpm import per_unit_dpm

    _, dpm = per_unit_dpm(db, manufacturer)
    return bootstrap_ci(list(dpm.values()), confidence=confidence)


@dataclass(frozen=True)
class SeedSweepResult:
    """Across-seed spread of one headline metric."""

    metric: str
    values: tuple[float, ...]

    @property
    def mean(self) -> float:
        """Mean across seeds."""
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        """Standard deviation across seeds."""
        if len(self.values) < 2:
            return 0.0
        return float(np.std(self.values, ddof=1))

    @property
    def spread(self) -> float:
        """Max minus min across seeds."""
        return max(self.values) - min(self.values)


def seed_sensitivity(seeds: Sequence[int],
                     manufacturers: list[str] | None = None,
                     ) -> dict[str, SeedSweepResult]:
    """Rerun the pipeline per seed; summarize headline metrics.

    Heavy (one full pipeline per seed) — meant for the validity bench
    and reports, not the unit-test path.
    """
    from ..pipeline import PipelineConfig, run_pipeline
    from .alertness import overall_mean_reaction_time
    from .categories import overall_category_shares
    from .maturity import pooled_dpm_correlation

    if not seeds:
        raise InsufficientDataError("no seeds to sweep")
    collected: dict[str, list[float]] = {
        "ml_design_share": [],
        "perception_share": [],
        "pooled_r": [],
        "mean_reaction_time_s": [],
        "tag_accuracy": [],
    }
    for seed in seeds:
        result = run_pipeline(PipelineConfig(
            seed=seed, manufacturers=manufacturers))
        db = result.database
        shares = overall_category_shares(db)
        collected["ml_design_share"].append(shares.get("ml_design", 0))
        collected["perception_share"].append(
            shares.get("perception", 0))
        collected["pooled_r"].append(pooled_dpm_correlation(db).r)
        collected["mean_reaction_time_s"].append(
            overall_mean_reaction_time(db))
        collected["tag_accuracy"].append(
            result.diagnostics.tagging.tag_accuracy)
    return {metric: SeedSweepResult(metric=metric, values=tuple(values))
            for metric, values in collected.items()}
