"""Reliability-demonstration arithmetic (Kalra-Paddock, ref. [36]).

The paper uses [36] to test statistical significance of its accident
rates.  Kalra & Paddock model failures as a Poisson process in miles:

* How many failure-free miles demonstrate a rate below ``r`` with
  confidence ``C``?  ``miles = -ln(1 - C) / r``.
* Given ``m`` miles with ``k`` failures, the one-sided upper
  confidence bound on the rate is ``chi2.ppf(C, 2k + 2) / (2 m)``.
"""

from __future__ import annotations

import math

from scipy import stats as sstats

from ..errors import AnalysisError


def miles_to_demonstrate(rate_per_mile: float,
                         confidence: float = 0.95) -> float:
    """Failure-free miles needed to show the rate is below the bound.

    For the paper's human benchmark (2e-6 accidents/mile, 95%
    confidence) this is the famous ~1.5 million failure-free miles.
    """
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence {confidence} outside (0, 1)")
    if rate_per_mile <= 0:
        raise AnalysisError("rate must be positive")
    return -math.log(1.0 - confidence) / rate_per_mile


def rate_upper_bound(miles: float, failures: int,
                     confidence: float = 0.95) -> float:
    """One-sided upper confidence bound on the per-mile failure rate."""
    if miles <= 0:
        raise AnalysisError("miles must be positive")
    if failures < 0:
        raise AnalysisError("failures must be non-negative")
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence {confidence} outside (0, 1)")
    return float(sstats.chi2.ppf(confidence, 2 * failures + 2)
                 / (2.0 * miles))


def rate_lower_bound(miles: float, failures: int,
                     confidence: float = 0.95) -> float:
    """One-sided lower confidence bound on the per-mile failure rate."""
    if failures == 0:
        return 0.0
    if miles <= 0:
        raise AnalysisError("miles must be positive")
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence {confidence} outside (0, 1)")
    return float(sstats.chi2.ppf(1.0 - confidence, 2 * failures)
                 / (2.0 * miles))


def failure_rate_confidence(miles: float, failures: int,
                            rate_per_mile: float) -> float:
    """Confidence that the true rate *exceeds* ``rate_per_mile``.

    This is the significance check the paper applies to its APM
    estimates ("made at > 90% significance" for Waymo and GMCruise).
    Under a Poisson failure process with the reference rate, the
    one-sided p-value of observing at least ``failures`` events is
    ``P(X >= k | lambda)``; the returned confidence is its complement
    ``P(X < k | lambda)``.
    """
    if miles <= 0 or rate_per_mile <= 0:
        raise AnalysisError("miles and rate must be positive")
    if failures < 0:
        raise AnalysisError("failures must be non-negative")
    if failures == 0:
        return 0.0
    expected = rate_per_mile * miles
    return float(sstats.poisson.cdf(failures - 1, expected))


def significant_at(miles: float, failures: int, rate_per_mile: float,
                   level: float = 0.90) -> bool:
    """Whether the observed count is significantly above the rate."""
    return failure_rate_confidence(miles, failures, rate_per_mile) > level
