"""Driver alertness: Question 4, Figs. 10-11.

Reaction-time distributions per manufacturer, the exponentiated-
Weibull fits of Fig. 11, the comparison against non-AV braking
reaction times, and the correlation between reaction time and
cumulative miles driven (alertness decays as the system improves).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..calibration.reaction_times import (
    ASSUMED_HUMAN_REACTION_TIME_S,
    NON_AV_BRAKING_REACTION_TIME_S,
)
from ..errors import InsufficientDataError
from ..pipeline.store import FailureDatabase
from .correlation import CorrelationResult, pearson
from .dpm import monthly_series
from .fitting import ExponWeibullFit, fit_exponweibull
from .stats import BoxplotStats, boxplot_stats

#: Reaction times above this are excluded from fits and means (the
#: paper suspects Volkswagen's ~4 h record is a measurement error).
OUTLIER_THRESHOLD_S = 600.0


@dataclass(frozen=True)
class AlertnessSummary:
    """Reaction-time summary for one manufacturer (one Fig. 10 box)."""

    manufacturer: str
    box: BoxplotStats
    #: Mean with implausible outliers excluded.
    trimmed_mean: float
    #: Count of excluded outliers.
    outliers: int

    @property
    def comparable_to_non_av(self) -> bool:
        """Whether the trimmed mean is within 0.5 s of the published
        non-AV braking reaction time (0.82 s)."""
        return abs(
            self.trimmed_mean - NON_AV_BRAKING_REACTION_TIME_S) < 0.5


def alertness_summary(db: FailureDatabase,
                      manufacturers: list[str] | None = None,
                      ) -> dict[str, AlertnessSummary]:
    """Fig. 10: per-manufacturer reaction-time summaries."""
    names = manufacturers if manufacturers is not None \
        else db.manufacturers()
    out: dict[str, AlertnessSummary] = {}
    for name in names:
        times = db.reaction_times(name)
        if not times:
            continue
        trimmed = [t for t in times if t <= OUTLIER_THRESHOLD_S]
        out[name] = AlertnessSummary(
            manufacturer=name,
            box=boxplot_stats(times),
            trimmed_mean=(sum(trimmed) / len(trimmed)
                          if trimmed else float("nan")),
            outliers=len(times) - len(trimmed),
        )
    return out


def overall_mean_reaction_time(db: FailureDatabase) -> float:
    """Mean reaction time across all manufacturers (outliers trimmed).

    The paper reports ~0.85 s.
    """
    times = [t for t in db.reaction_times()
             if t <= OUTLIER_THRESHOLD_S]
    if not times:
        raise InsufficientDataError("no reaction times in the database")
    return sum(times) / len(times)


def fit_reaction_times(db: FailureDatabase, manufacturer: str,
                       ) -> ExponWeibullFit:
    """Fig. 11: exponentiated-Weibull fit of one manufacturer's
    reaction times (outliers excluded, as the paper does for VW)."""
    times = db.reaction_times(manufacturer)
    return fit_exponweibull(times, trim_above=OUTLIER_THRESHOLD_S)


def reaction_time_mileage_correlation(db: FailureDatabase,
                                      manufacturer: str,
                                      ) -> CorrelationResult:
    """Correlation between cumulative miles and reaction times.

    Each disengagement with a reaction time contributes one point:
    (cumulative manufacturer miles through its month, reaction time).
    The paper reports r = 0.19 (Waymo) and 0.11 (Mercedes-Benz),
    positive at 99% confidence: alertness decays as DPM improves.
    """
    cumulative = {point.month: point.cumulative_miles
                  for point in monthly_series(db, manufacturer)}
    xs, ys = [], []
    for record in db.disengagements:
        if (record.manufacturer != manufacturer
                or record.reaction_time_s is None
                or record.reaction_time_s > OUTLIER_THRESHOLD_S):
            continue
        miles = cumulative.get(record.month)
        if miles and miles > 0:
            xs.append(miles)
            ys.append(record.reaction_time_s)
    return pearson(xs, ys)


def action_window(detection_time_s: float,
                  reaction_time_s: float) -> float:
    """The end-to-end action window: fault detection plus driver
    reaction (the paper argues its small size makes reaction-time
    accidents a frequent failure mode)."""
    if detection_time_s < 0 or reaction_time_s < 0:
        raise InsufficientDataError("times must be non-negative")
    return detection_time_s + reaction_time_s


def human_baseline() -> dict[str, float]:
    """Published human reaction-time baselines used for comparison."""
    return {
        "non_av_braking_s": NON_AV_BRAKING_REACTION_TIME_S,
        "assumed_human_s": ASSUMED_HUMAN_REACTION_TIME_S,
    }
