"""Descriptive statistics used across Stage IV."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InsufficientDataError


@dataclass(frozen=True)
class BoxplotStats:
    """The five-number summary drawn in the paper's box plots."""

    n: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float

    @property
    def iqr(self) -> float:
        """Interquartile range."""
        return self.q3 - self.q1

    @property
    def whisker_low(self) -> float:
        """Lower whisker (paper's boxes whisker to min/max)."""
        return self.minimum

    @property
    def whisker_high(self) -> float:
        """Upper whisker."""
        return self.maximum

    def as_row(self) -> dict[str, float]:
        """Dictionary form for table rendering."""
        return {
            "n": self.n, "min": self.minimum, "q1": self.q1,
            "median": self.median, "q3": self.q3, "max": self.maximum,
            "mean": self.mean,
        }


def boxplot_stats(values: list[float] | np.ndarray) -> BoxplotStats:
    """Five-number summary of ``values``."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise InsufficientDataError("no values to summarize")
    minimum = float(array.min())
    maximum = float(array.max())
    # Percentile interpolation can drift a few ULP outside [min, max]
    # at large magnitudes; clamp so the five-number ordering is exact.
    q1, median, q3 = (
        float(min(max(q, minimum), maximum))
        for q in np.percentile(array, [25, 50, 75]))
    return BoxplotStats(
        n=int(array.size),
        minimum=minimum,
        q1=q1,
        median=median,
        q3=q3,
        maximum=maximum,
        mean=float(min(max(array.mean(), minimum), maximum)),
    )


def describe(values: list[float] | np.ndarray) -> dict[str, float]:
    """Extended summary: five numbers plus spread and tail metrics."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise InsufficientDataError("no values to describe")
    box = boxplot_stats(array)
    out = box.as_row()
    out["std"] = float(array.std(ddof=1)) if array.size > 1 else 0.0
    out["p95"] = float(np.percentile(array, 95))
    out["p99"] = float(np.percentile(array, 99))
    return out


def geometric_mean(values: list[float] | np.ndarray) -> float:
    """Geometric mean of strictly positive values."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise InsufficientDataError("no values for geometric mean")
    if np.any(array <= 0):
        raise InsufficientDataError(
            "geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(array))))
