"""Accidents per mile: Question 5, Tables VI-VII, Fig. 12.

Because the DMV redacts vehicle identification in some accident
reports, the paper derives APM indirectly: APM = DPM / DPA, where DPA
(disengagements per accident) comes from the report counts.  The
first-principles APM (accidents / miles) is also computed for the
correlation check.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..calibration.baselines import HUMAN_ACCIDENTS_PER_MILE
from ..errors import InsufficientDataError
from ..pipeline.store import FailureDatabase
from .correlation import CorrelationResult, pearson
from .dpm import manufacturer_dpm_summary
from .fitting import ExponentialFit, fit_exponential


@dataclass(frozen=True)
class AccidentSummary:
    """One Table VI row."""

    manufacturer: str
    accidents: int
    fraction_of_total: float
    #: Disengagements per accident (None when no disengagement data).
    dpa: float | None


@dataclass(frozen=True)
class ApmSummary:
    """One Table VII row."""

    manufacturer: str
    median_dpm: float
    #: APM = median DPM / DPA (None without accidents).
    apm: float | None
    #: APM relative to the human baseline (None without accidents).
    relative_to_human: float | None


def accident_summary(db: FailureDatabase) -> dict[str, AccidentSummary]:
    """Table VI: accident counts, shares, and DPA per manufacturer."""
    by_manufacturer = db.accidents_by_manufacturer()
    total = sum(len(records) for records in by_manufacturer.values())
    if total == 0:
        raise InsufficientDataError("no accidents in the database")
    disengagements = db.disengagements_by_manufacturer()
    out: dict[str, AccidentSummary] = {}
    for name, records in sorted(by_manufacturer.items()):
        n_disengagements = len(disengagements.get(name, []))
        out[name] = AccidentSummary(
            manufacturer=name,
            accidents=len(records),
            fraction_of_total=100.0 * len(records) / total,
            dpa=(n_disengagements / len(records)
                 if n_disengagements else None),
        )
    return out


def apm_summary(db: FailureDatabase,
                manufacturers: list[str] | None = None,
                ) -> dict[str, ApmSummary]:
    """Table VII: median DPM, APM = DPM/DPA, and ratio to human APM."""
    dpm = manufacturer_dpm_summary(db, manufacturers)
    accidents = accident_summary(db)
    out: dict[str, ApmSummary] = {}
    for name, summary in dpm.items():
        accident = accidents.get(name)
        apm = None
        relative = None
        if accident is not None and accident.dpa:
            apm = summary.median_dpm / accident.dpa
            relative = apm / HUMAN_ACCIDENTS_PER_MILE
        out[name] = ApmSummary(
            manufacturer=name,
            median_dpm=summary.median_dpm,
            apm=apm,
            relative_to_human=relative,
        )
    return out


def first_principles_apm(db: FailureDatabase) -> dict[str, float]:
    """APM computed directly as accidents / miles, where attributable."""
    miles = db.miles_by_manufacturer()
    out = {}
    for name, records in db.accidents_by_manufacturer().items():
        total_miles = miles.get(name, 0.0)
        if total_miles > 0:
            out[name] = len(records) / total_miles
    return out


def apm_miles_correlation(db: FailureDatabase) -> CorrelationResult:
    """Correlation between accident counts and miles driven across
    manufacturers (the paper reports r = 0.98 at p < 0.01)."""
    miles = db.miles_by_manufacturer()
    xs, ys = [], []
    for name, records in db.accidents_by_manufacturer().items():
        total_miles = miles.get(name, 0.0)
        if total_miles > 0:
            xs.append(total_miles)
            ys.append(float(len(records)))
    return pearson(xs, ys)


@dataclass(frozen=True)
class SpeedDistributions:
    """Fig. 12: collision-speed samples and their exponential fits."""

    av_speeds: list[float]
    other_speeds: list[float]
    relative_speeds: list[float]
    av_fit: ExponentialFit
    other_fit: ExponentialFit
    relative_fit: ExponentialFit

    def fraction_relative_below(self, mph: float) -> float:
        """Empirical fraction of accidents below a relative speed."""
        if not self.relative_speeds:
            return 0.0
        below = sum(1 for s in self.relative_speeds if s < mph)
        return below / len(self.relative_speeds)


def collision_speed_distributions(db: FailureDatabase,
                                  ) -> SpeedDistributions:
    """Build Fig. 12's three distributions from the accident records."""
    av = [a.av_speed_mph for a in db.accidents
          if a.av_speed_mph is not None]
    other = [a.other_speed_mph for a in db.accidents
             if a.other_speed_mph is not None]
    relative = [a.relative_speed_mph for a in db.accidents
                if a.relative_speed_mph is not None]
    if not av or not other or not relative:
        raise InsufficientDataError("accident records lack speeds")
    return SpeedDistributions(
        av_speeds=av,
        other_speeds=other,
        relative_speeds=relative,
        av_fit=fit_exponential(av),
        other_fit=fit_exponential(other),
        relative_fit=fit_exponential(relative),
    )


def miles_per_disengagement(db: FailureDatabase) -> float:
    """Average autonomous miles per disengagement, aggregated per
    manufacturer then averaged (the paper's 262-mile figure)."""
    values = []
    for name, records in db.disengagements_by_manufacturer().items():
        miles = db.miles_by_manufacturer().get(name, 0.0)
        if miles > 0 and records:
            values.append(miles / len(records))
    if not values:
        raise InsufficientDataError("no manufacturers with mileage data")
    return float(np.mean(values))


def disengagements_per_accident_overall(db: FailureDatabase) -> float:
    """Total disengagements over total accidents (the ~127 figure)."""
    n_accidents = len(db.accidents)
    if n_accidents == 0:
        raise InsufficientDataError("no accidents in the database")
    return len(db.disengagements) / n_accidents
