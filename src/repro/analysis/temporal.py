"""Temporal trend analysis (Fig. 7 machinery).

Implements the trend statistics behind the paper's temporal claims: a
Mann-Kendall monotone-trend test over monthly DPM series (robust to
the non-normal rates), the per-year median/variance evolution (the
paper observes medians improving while variance grows), and a
Theil-Sen slope estimate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import InsufficientDataError
from ..pipeline.store import FailureDatabase
from .dpm import monthly_series, yearly_dpm_distributions


@dataclass(frozen=True)
class TrendTest:
    """Mann-Kendall test result."""

    s_statistic: int
    z_score: float
    p_value: float
    n: int

    @property
    def direction(self) -> str:
        """"decreasing", "increasing", or "none"."""
        if self.s_statistic < 0:
            return "decreasing"
        if self.s_statistic > 0:
            return "increasing"
        return "none"

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the trend is significant at level ``alpha``."""
        return self.p_value < alpha


def mann_kendall(values: list[float] | np.ndarray) -> TrendTest:
    """Mann-Kendall monotone trend test (normal approximation with
    tie correction)."""
    array = np.asarray(values, dtype=float)
    n = array.size
    if n < 4:
        raise InsufficientDataError(
            f"need at least 4 observations, got {n}")
    s = 0
    for i in range(n - 1):
        s += int(np.sum(np.sign(array[i + 1:] - array[i])))
    unique, counts = np.unique(array, return_counts=True)
    tie_term = float(np.sum(counts * (counts - 1) * (2 * counts + 5)))
    variance = (n * (n - 1) * (2 * n + 5) - tie_term) / 18.0
    if variance <= 0:
        return TrendTest(s_statistic=s, z_score=0.0, p_value=1.0, n=n)
    if s > 0:
        z = (s - 1) / math.sqrt(variance)
    elif s < 0:
        z = (s + 1) / math.sqrt(variance)
    else:
        z = 0.0
    p = 2.0 * (1.0 - _normal_cdf(abs(z)))
    return TrendTest(s_statistic=s, z_score=z, p_value=p, n=n)


def _normal_cdf(x: float) -> float:
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def theil_sen_slope(values: list[float] | np.ndarray) -> float:
    """Median of pairwise slopes (robust trend magnitude)."""
    array = np.asarray(values, dtype=float)
    n = array.size
    if n < 2:
        raise InsufficientDataError("need at least 2 observations")
    slopes = [(array[j] - array[i]) / (j - i)
              for i in range(n - 1) for j in range(i + 1, n)]
    return float(np.median(slopes))


def dpm_trend_test(db: FailureDatabase,
                   manufacturer: str) -> TrendTest:
    """Mann-Kendall test over a manufacturer's monthly DPM series."""
    series = [p.dpm for p in monthly_series(db, manufacturer)
              if p.miles > 0]
    return mann_kendall(series)


@dataclass(frozen=True)
class YearlyEvolution:
    """Median and spread of DPM per year for one manufacturer."""

    manufacturer: str
    medians: dict[int, float]
    variances: dict[int, float]

    @property
    def median_improving(self) -> bool:
        """Whether the yearly median DPM falls over the window."""
        years = sorted(self.medians)
        return self.medians[years[-1]] < self.medians[years[0]]

    @property
    def improvement_factor(self) -> float:
        """First-year median over last-year median."""
        years = sorted(self.medians)
        last = self.medians[years[-1]]
        if last <= 0:
            return float("inf")
        return self.medians[years[0]] / last

    @property
    def relative_spread_growing(self) -> bool:
        """Whether variance relative to the median grows over years
        (the paper: median improves, worst case does not)."""
        years = sorted(self.medians)
        if len(years) < 2:
            return False
        def rel(year: int) -> float:
            median = self.medians[year]
            if median <= 0:
                return 0.0
            return self.variances[year] / (median ** 2)
        return rel(years[-1]) > rel(years[0])


def yearly_evolution(db: FailureDatabase,
                     manufacturer: str) -> YearlyEvolution:
    """Per-year DPM medians and variances for one manufacturer."""
    yearly = yearly_dpm_distributions(db, [manufacturer]).get(
        manufacturer)
    if not yearly:
        raise InsufficientDataError(
            f"{manufacturer}: no yearly DPM distributions")
    medians = {}
    variances = {}
    for year, values in yearly.items():
        array = np.asarray(values, dtype=float)
        medians[year] = float(np.median(array))
        variances[year] = (float(array.var(ddof=1))
                           if array.size > 1 else 0.0)
    return YearlyEvolution(manufacturer=manufacturer,
                           medians=medians, variances=variances)
