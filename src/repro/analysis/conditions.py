"""Condition-conditioned analyses: road type and weather.

The paper reports the road-type split of testing miles (Sec. III-C) and
notes the "not all miles are equivalent" threat to validity: some
manufacturers test in harder conditions.  For the manufacturers that
report conditions, these analyses break disengagements down by road
type and weather and compare against the mileage exposure shares.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..calibration.roads import ROAD_TYPE_SHARES, RoadType
from ..errors import InsufficientDataError
from ..pipeline.store import FailureDatabase


@dataclass(frozen=True)
class ConditionBreakdown:
    """Share of disengagements per condition value."""

    condition: str  # "road_type" or "weather"
    total: int
    shares: dict[str, float]

    def top(self, k: int = 3) -> list[tuple[str, float]]:
        """The ``k`` most frequent condition values."""
        ranked = sorted(self.shares.items(), key=lambda kv: -kv[1])
        return ranked[:k]


def road_type_breakdown(db: FailureDatabase,
                        manufacturer: str | None = None,
                        ) -> ConditionBreakdown:
    """Disengagement shares per road type."""
    counts: Counter = Counter()
    for record in db.disengagements:
        if manufacturer is not None \
                and record.manufacturer != manufacturer:
            continue
        if record.road_type:
            counts[record.road_type] += 1
    total = sum(counts.values())
    if total == 0:
        raise InsufficientDataError(
            "no records report a road type"
            + (f" for {manufacturer}" if manufacturer else ""))
    return ConditionBreakdown(
        condition="road_type", total=total,
        shares={road: count / total for road, count in counts.items()})


def weather_breakdown(db: FailureDatabase,
                      manufacturer: str | None = None,
                      ) -> ConditionBreakdown:
    """Disengagement shares per weather condition."""
    counts: Counter = Counter()
    for record in db.disengagements:
        if manufacturer is not None \
                and record.manufacturer != manufacturer:
            continue
        if record.weather:
            counts[record.weather] += 1
    total = sum(counts.values())
    if total == 0:
        raise InsufficientDataError(
            "no records report weather"
            + (f" for {manufacturer}" if manufacturer else ""))
    return ConditionBreakdown(
        condition="weather", total=total,
        shares={weather: count / total
                for weather, count in counts.items()})


def road_type_enrichment(db: FailureDatabase) -> dict[str, float]:
    """Disengagement share per road type divided by mileage exposure.

    A ratio above 1 means the road type produces more disengagements
    than its share of testing miles — the "not all miles are
    equivalent" signal.  Exposure comes from the calibrated road-type
    mileage shares (the reports give per-event road types but not
    per-road-type mileage).
    """
    breakdown = road_type_breakdown(db)
    enrichment: dict[str, float] = {}
    for road_type, exposure in ROAD_TYPE_SHARES.items():
        share = breakdown.shares.get(str(road_type), 0.0)
        if exposure > 0:
            enrichment[str(road_type)] = share / exposure
    return enrichment


def time_of_day_breakdown(db: FailureDatabase,
                          manufacturer: str | None = None,
                          ) -> dict[int, int]:
    """Disengagement counts by hour of day (0-23).

    Only manufacturers reporting timestamps contribute; testing is
    diurnal, so the distribution concentrates in working hours.
    """
    counts: Counter = Counter()
    for record in db.disengagements:
        if manufacturer is not None \
                and record.manufacturer != manufacturer:
            continue
        if record.time_of_day is not None:
            counts[record.time_of_day[0]] += 1
    if not counts:
        raise InsufficientDataError(
            "no records report a time of day"
            + (f" for {manufacturer}" if manufacturer else ""))
    return dict(sorted(counts.items()))


def reporting_census(db: FailureDatabase) -> dict[str, dict[str, float]]:
    """Per-manufacturer share of records reporting each optional field.

    Quantifies the data-heterogeneity threat: which manufacturers
    report timestamps, vehicles, conditions, and reaction times.
    """
    fields = ("event_date", "time_of_day", "vehicle_id", "road_type",
              "weather", "reaction_time_s", "modality")
    census: dict[str, dict[str, float]] = {}
    for name, records in db.disengagements_by_manufacturer().items():
        total = len(records)
        census[name] = {
            field: sum(1 for r in records
                       if getattr(r, field) is not None) / total
            for field in fields
        }
    return census


__all__ = [
    "ConditionBreakdown",
    "road_type_breakdown",
    "weather_breakdown",
    "road_type_enrichment",
    "reporting_census",
    "RoadType",
]
