"""Disengagements per mile (DPM): Questions 1 and 3, Figs. 4, 7.

The paper's unit of analysis is the *car* where the manufacturer
attributes events to vehicles, and the *month* otherwise (GM Cruise,
Tesla, and Volkswagen never identify vehicles in their rows).  Both
units produce a distribution of DPM values per manufacturer whose
quartiles the box plots show.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from ..errors import InsufficientDataError
from ..pipeline.store import FailureDatabase
from .stats import BoxplotStats, boxplot_stats


@dataclass(frozen=True)
class MonthlyPoint:
    """One (manufacturer, month) observation."""

    month: str
    miles: float
    disengagements: int
    cumulative_miles: float

    @property
    def dpm(self) -> float:
        """Disengagements per mile in this month."""
        return self.disengagements / self.miles if self.miles > 0 else 0.0

    @property
    def year(self) -> int:
        """Calendar year."""
        return int(self.month[:4])


@dataclass(frozen=True)
class DpmSummary:
    """Per-manufacturer DPM distribution summary (one Fig. 4 box)."""

    manufacturer: str
    #: "car" or "month": the unit the distribution is over.
    unit: str
    box: BoxplotStats
    #: Total disengagements / total miles.
    aggregate_dpm: float

    @property
    def median_dpm(self) -> float:
        """Median per-unit DPM (the Table VII column)."""
        return self.box.median


def monthly_series(db: FailureDatabase,
                   manufacturer: str) -> list[MonthlyPoint]:
    """Month-by-month miles/disengagements/cumulative series."""
    miles = db.monthly_miles(manufacturer)
    events = db.monthly_disengagements(manufacturer)
    months = sorted(set(miles) | set(events))
    series: list[MonthlyPoint] = []
    cumulative = 0.0
    for month in months:
        month_miles = miles.get(month, 0.0)
        cumulative += month_miles
        series.append(MonthlyPoint(
            month=month,
            miles=month_miles,
            disengagements=events.get(month, 0),
            cumulative_miles=cumulative,
        ))
    return series


def has_vehicle_attribution(db: FailureDatabase,
                            manufacturer: str) -> bool:
    """Whether events are attributable to individual vehicles."""
    attributed, total = db.vehicle_attribution_counts(manufacturer)
    if not total:
        return False
    return attributed / total > 0.9


def per_unit_dpm(db: FailureDatabase,
                 manufacturer: str) -> tuple[str, dict[str, float]]:
    """Per-car DPM when attributable, per-month DPM otherwise.

    Returns ``(unit, {unit_key: dpm})``.  Units with zero recorded
    miles are skipped (no rate is defined for them).
    """
    if has_vehicle_attribution(db, manufacturer):
        miles = db.vehicle_miles(manufacturer)
        events = db.vehicle_disengagements(manufacturer)
        dpm = {vehicle: events.get(vehicle, 0) / vehicle_miles
               for vehicle, vehicle_miles in miles.items()
               if vehicle_miles > 0}
        if dpm:
            return "car", dpm
    series = monthly_series(db, manufacturer)
    return "month", {
        point.month: point.dpm for point in series if point.miles > 0}


def manufacturer_dpm_summary(db: FailureDatabase,
                             manufacturers: list[str] | None = None,
                             ) -> dict[str, DpmSummary]:
    """Fig. 4 / Table VII column: per-manufacturer DPM summaries."""
    names = manufacturers if manufacturers is not None \
        else db.manufacturers()
    out: dict[str, DpmSummary] = {}
    for name in names:
        unit, dpm = per_unit_dpm(db, name)
        if not dpm:
            continue
        total_miles = sum(db.monthly_miles(name).values())
        total_events = sum(db.monthly_disengagements(name).values())
        out[name] = DpmSummary(
            manufacturer=name,
            unit=unit,
            box=boxplot_stats(list(dpm.values())),
            aggregate_dpm=(total_events / total_miles
                           if total_miles > 0 else 0.0),
        )
    return out


def yearly_dpm_distributions(db: FailureDatabase,
                             manufacturers: list[str] | None = None,
                             ) -> dict[str, dict[int, list[float]]]:
    """Fig. 7: per-(unit, year) DPM distributions per manufacturer."""
    names = manufacturers if manufacturers is not None \
        else db.manufacturers()
    out: dict[str, dict[int, list[float]]] = {}
    for name in names:
        per_year: dict[int, list[float]] = defaultdict(list)
        if has_vehicle_attribution(db, name):
            # Per (car, year): miles and events split by year.
            miles = db.vehicle_year_miles(name)
            events = db.vehicle_year_disengagements(name)
            for (vehicle, year), vehicle_miles in miles.items():
                if vehicle_miles > 0:
                    per_year[year].append(
                        events.get((vehicle, year), 0) / vehicle_miles)
        else:
            for point in monthly_series(db, name):
                if point.miles > 0:
                    per_year[point.year].append(point.dpm)
        if per_year:
            out[name] = dict(sorted(per_year.items()))
    return out


def dpm_quantile_tags(db: FailureDatabase, manufacturer: str,
                      ) -> dict[str, list]:
    """Split a manufacturer's months into DPM quartile bands with the
    fault tags observed in each — supports the paper's observation
    that perception faults drive the upper three quartiles."""
    series = monthly_series(db, manufacturer)
    active = [p for p in series if p.miles > 0]
    if len(active) < 4:
        raise InsufficientDataError(
            f"{manufacturer}: too few active months for quartile bands")
    values = sorted(p.dpm for p in active)
    q1 = values[len(values) // 4]
    bands: dict[str, list] = {"lower": [], "upper": []}
    month_band = {p.month: ("lower" if p.dpm <= q1 else "upper")
                  for p in active}
    for record in db.disengagements:
        if record.manufacturer != manufacturer:
            continue
        band = month_band.get(record.month)
        if band and record.tag is not None:
            bands[band].append(record.tag)
    return bands
