"""Stage IV: statistical analysis of the consolidated failure data.

One module per family of analyses in Section V:

* :mod:`~repro.analysis.stats` — descriptive statistics (boxplots).
* :mod:`~repro.analysis.regression` — linear / log-log fits.
* :mod:`~repro.analysis.correlation` — Pearson correlation with p-values.
* :mod:`~repro.analysis.fitting` — Weibull / exponential MLE fits.
* :mod:`~repro.analysis.dpm` — disengagements per mile (Q1, Q3; Figs. 4-9).
* :mod:`~repro.analysis.categories` — fault categorization (Q2; Tables IV-V, Fig. 6).
* :mod:`~repro.analysis.alertness` — driver reaction times (Q4; Figs. 10-11).
* :mod:`~repro.analysis.apm` — accidents per mile (Q5; Tables VI-VII, Fig. 12).
* :mod:`~repro.analysis.missions` — per-mission comparison (Table VIII).
* :mod:`~repro.analysis.maturity` — burn-in assessment (Q1/Q3).
* :mod:`~repro.analysis.significance` — Kalra-Paddock reliability-demonstration model.
"""

from .stats import BoxplotStats, boxplot_stats, describe
from .regression import LinearFit, fit_linear, fit_loglog
from .correlation import CorrelationResult, pearson
from .fitting import (
    ExponentialFit,
    ExponWeibullFit,
    fit_exponential,
    fit_exponweibull,
)
from .dpm import (
    DpmSummary,
    manufacturer_dpm_summary,
    monthly_series,
    per_unit_dpm,
    yearly_dpm_distributions,
)
from .categories import (
    category_percentages,
    modality_percentages,
    tag_fractions,
)
from .alertness import AlertnessSummary, alertness_summary, reaction_time_mileage_correlation
from .apm import ApmSummary, accident_summary, apm_summary
from .missions import MissionComparison, mission_comparison
from .maturity import MaturityAssessment, assess_maturity, pooled_dpm_correlation
from .significance import miles_to_demonstrate, failure_rate_confidence

__all__ = [
    "BoxplotStats", "boxplot_stats", "describe",
    "LinearFit", "fit_linear", "fit_loglog",
    "CorrelationResult", "pearson",
    "ExponentialFit", "ExponWeibullFit",
    "fit_exponential", "fit_exponweibull",
    "DpmSummary", "manufacturer_dpm_summary", "monthly_series",
    "per_unit_dpm", "yearly_dpm_distributions",
    "category_percentages", "modality_percentages", "tag_fractions",
    "AlertnessSummary", "alertness_summary",
    "reaction_time_mileage_correlation",
    "ApmSummary", "accident_summary", "apm_summary",
    "MissionComparison", "mission_comparison",
    "MaturityAssessment", "assess_maturity", "pooled_dpm_correlation",
    "miles_to_demonstrate", "failure_rate_confidence",
]
