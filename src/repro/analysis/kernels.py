"""Stage IV analyses packaged as query kernels.

Thin adapters only: each kernel is a named, zero-argument-beyond-the-
database callable that delegates to the existing :mod:`repro.analysis`
functions.  The query engine dispatches ``(metric, group_by)`` pairs
through :data:`KERNELS`, so a served answer is *the same computation*
as calling the analysis module directly — never a re-implementation
of the math (the golden parity tests compare the two byte-for-byte).
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import InsufficientDataError
from ..pipeline.store import FailureDatabase
from .apm import (
    accident_summary,
    apm_summary,
    disengagements_per_accident_overall,
)
from .categories import (
    category_percentages,
    modality_percentages,
    tag_fractions,
)
from .dpm import (
    manufacturer_dpm_summary,
    monthly_series,
    yearly_dpm_distributions,
)
from .temporal import dpm_trend_test

Kernel = Callable[[FailureDatabase], Any]


def _dpm_by_month(db: FailureDatabase) -> dict[str, list]:
    """Manufacturer -> month-by-month DPM series."""
    return {name: monthly_series(db, name)
            for name in db.manufacturers()}


def _dpa_overall(db: FailureDatabase) -> float:
    """Total disengagements over total accidents (the ~127 figure)."""
    return disengagements_per_accident_overall(db)


def _trend_by_manufacturer(db: FailureDatabase) -> dict[str, Any]:
    """Manufacturer -> Mann-Kendall DPM trend test.

    Manufacturers with too few active months for the test (fewer than
    4 observations) are omitted rather than failing the whole query.
    """
    out: dict[str, Any] = {}
    for name in db.manufacturers():
        try:
            out[name] = dpm_trend_test(db, name)
        except InsufficientDataError:
            continue
    return out


#: ``(metric, group_by)`` -> the Stage IV computation serving it.
KERNELS: dict[tuple[str, str | None], Kernel] = {
    ("dpm", "manufacturer"): manufacturer_dpm_summary,
    ("dpm", "month"): _dpm_by_month,
    ("dpm", "year"): yearly_dpm_distributions,
    ("apm", "manufacturer"): apm_summary,
    ("dpa", "manufacturer"): accident_summary,
    ("dpa", None): _dpa_overall,
    ("tags", "manufacturer"): tag_fractions,
    ("categories", "manufacturer"): category_percentages,
    ("modalities", "manufacturer"): modality_percentages,
    ("trend", "manufacturer"): _trend_by_manufacturer,
}
