"""DPM forecasting and backtesting (Question 3 made predictive).

The paper's Fig. 9 fits ``log DPM ~ log cumulative miles`` and argues
manufacturers keep improving.  If that model is right, it should
*predict*: train it on a prefix of a manufacturer's months, extrapolate
the disengagement counts for the remaining months from their (known)
mileage, and compare against what actually happened.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InsufficientDataError
from ..pipeline.store import FailureDatabase
from .dpm import MonthlyPoint, monthly_series
from .regression import LinearFit, fit_loglog


@dataclass(frozen=True)
class DpmForecast:
    """A trained power-law DPM model and its holdout evaluation."""

    manufacturer: str
    fit: LinearFit
    train_months: int
    test_months: int
    #: Predicted and actual disengagement counts on the holdout.
    predicted: tuple[float, ...]
    actual: tuple[int, ...]

    @property
    def predicted_total(self) -> float:
        """Total predicted holdout disengagements."""
        return float(sum(self.predicted))

    @property
    def actual_total(self) -> int:
        """Total actual holdout disengagements."""
        return int(sum(self.actual))

    @property
    def total_error(self) -> float:
        """|predicted - actual| / actual over the holdout total."""
        if self.actual_total == 0:
            return float("inf") if self.predicted_total > 0 else 0.0
        return abs(self.predicted_total
                   - self.actual_total) / self.actual_total

    @property
    def mean_monthly_error(self) -> float:
        """Mean absolute monthly error in counts."""
        if not self.actual:
            return 0.0
        return float(np.mean([abs(p - a) for p, a
                              in zip(self.predicted, self.actual)]))


def predict_dpm(fit: LinearFit, cumulative_miles: float) -> float:
    """DPM predicted by a log-log fit at a cumulative mileage."""
    if cumulative_miles <= 0:
        raise InsufficientDataError(
            "cumulative miles must be positive")
    return float(10 ** fit.predict(np.log10(cumulative_miles)))


def _split(series: list[MonthlyPoint], train_fraction: float,
           ) -> tuple[list[MonthlyPoint], list[MonthlyPoint]]:
    active = [p for p in series if p.miles > 0]
    if len(active) < 6:
        raise InsufficientDataError(
            f"need at least 6 active months, got {len(active)}")
    if not 0.0 < train_fraction < 1.0:
        raise InsufficientDataError(
            f"train fraction {train_fraction} outside (0, 1)")
    cut = max(3, int(len(active) * train_fraction))
    if cut >= len(active):
        raise InsufficientDataError("no holdout months left")
    return active[:cut], active[cut:]


def backtest(db: FailureDatabase, manufacturer: str,
             train_fraction: float = 0.6) -> DpmForecast:
    """Train on a month prefix; evaluate count predictions on the
    rest."""
    series = monthly_series(db, manufacturer)
    train, test = _split(series, train_fraction)
    pairs = [(p.cumulative_miles, p.dpm) for p in train if p.dpm > 0]
    if len(pairs) < 3:
        raise InsufficientDataError(
            f"{manufacturer}: too few positive training months")
    fit = fit_loglog([p[0] for p in pairs], [p[1] for p in pairs])
    predicted = tuple(
        predict_dpm(fit, point.cumulative_miles) * point.miles
        for point in test)
    actual = tuple(point.disengagements for point in test)
    return DpmForecast(
        manufacturer=manufacturer,
        fit=fit,
        train_months=len(train),
        test_months=len(test),
        predicted=predicted,
        actual=actual,
    )


def backtest_all(db: FailureDatabase,
                 manufacturers: list[str] | None = None,
                 train_fraction: float = 0.6,
                 ) -> dict[str, DpmForecast]:
    """Backtest every manufacturer with enough history."""
    names = manufacturers if manufacturers is not None \
        else db.manufacturers()
    out = {}
    for name in names:
        try:
            out[name] = backtest(db, name, train_fraction)
        except InsufficientDataError:
            continue
    return out
