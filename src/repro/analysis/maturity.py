"""Maturity ("burn-in") assessment: Question 1/3, Figs. 5, 8, 9.

* Fig. 5: cumulative disengagements vs. cumulative miles per
  manufacturer, with log-log linear fits.  Mature technology would
  show the curve flattening (slope -> 0 in DPM terms); the paper finds
  no manufacturer there yet.
* Fig. 8: pooled correlation between log(DPM) and log(cumulative
  miles) across all (manufacturer, month) points: r = -0.87.
* Fig. 9: per-manufacturer DPM-vs-cumulative-miles fits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import InsufficientDataError
from ..pipeline.store import FailureDatabase
from .correlation import CorrelationResult, log_pearson
from .dpm import MonthlyPoint, monthly_series
from .regression import LinearFit, fit_loglog


@dataclass(frozen=True)
class MaturityAssessment:
    """Per-manufacturer burn-in assessment."""

    manufacturer: str
    #: Fig. 5 fit: log cumulative disengagements vs log cumulative miles.
    cumulative_fit: LinearFit
    #: Fig. 9 fit: log monthly DPM vs log cumulative miles.
    dpm_fit: LinearFit | None
    #: The monthly observations behind both fits.
    series: list[MonthlyPoint] = field(default_factory=list)

    @property
    def improving(self) -> bool:
        """Whether DPM falls as miles accumulate."""
        return self.dpm_fit is not None and self.dpm_fit.slope < 0

    @property
    def mature(self) -> bool:
        """Paper's maturity criterion: DPM trend near the horizontal
        asymptote (we use |slope| < 0.05 as 'near zero')."""
        return (self.dpm_fit is not None
                and abs(self.dpm_fit.slope) < 0.05)


def cumulative_curve(db: FailureDatabase, manufacturer: str,
                     ) -> tuple[list[float], list[int]]:
    """(cumulative miles, cumulative disengagements) month by month."""
    series = monthly_series(db, manufacturer)
    miles, events = [], []
    running = 0
    for point in series:
        running += point.disengagements
        miles.append(point.cumulative_miles)
        events.append(running)
    return miles, events


def assess_maturity(db: FailureDatabase, manufacturer: str,
                    ) -> MaturityAssessment:
    """Build the full maturity assessment for one manufacturer."""
    series = monthly_series(db, manufacturer)
    active = [p for p in series if p.miles > 0]
    if len(active) < 3:
        raise InsufficientDataError(
            f"{manufacturer}: too few active months")
    cum_miles, cum_events = cumulative_curve(db, manufacturer)
    pairs = [(m, e) for m, e in zip(cum_miles, cum_events)
             if m > 0 and e > 0]
    if len(pairs) < 2:
        raise InsufficientDataError(
            f"{manufacturer}: no positive cumulative points")
    cumulative_fit = fit_loglog([p[0] for p in pairs],
                                [p[1] for p in pairs])
    dpm_fit = None
    dpm_pairs = [(p.cumulative_miles, p.dpm) for p in active if p.dpm > 0]
    if len(dpm_pairs) >= 2:
        dpm_fit = fit_loglog([p[0] for p in dpm_pairs],
                             [p[1] for p in dpm_pairs])
    return MaturityAssessment(
        manufacturer=manufacturer,
        cumulative_fit=cumulative_fit,
        dpm_fit=dpm_fit,
        series=series,
    )


def pooled_dpm_correlation(db: FailureDatabase,
                           manufacturers: list[str] | None = None,
                           ) -> CorrelationResult:
    """Fig. 8: pooled Pearson r of log(DPM) vs log(cumulative miles).

    One point per (manufacturer, month) with positive miles and at
    least one disengagement.
    """
    names = manufacturers if manufacturers is not None \
        else db.manufacturers()
    cum, dpm = [], []
    for name in names:
        for point in monthly_series(db, name):
            if point.miles > 0 and point.dpm > 0:
                cum.append(point.cumulative_miles)
                dpm.append(point.dpm)
    return log_pearson(cum, dpm)


def all_assessments(db: FailureDatabase,
                    manufacturers: list[str] | None = None,
                    ) -> dict[str, MaturityAssessment]:
    """Maturity assessments for all (assessable) manufacturers."""
    names = manufacturers if manufacturers is not None \
        else db.manufacturers()
    out = {}
    for name in names:
        try:
            out[name] = assess_maturity(db, name)
        except InsufficientDataError:
            continue
    return out
