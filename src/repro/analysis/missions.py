"""Per-mission comparison with other safety-critical systems
(Table VIII, Sec. V-C1).

A *mission* is one continuous operation: a trip for a vehicle, a
departure for an airplane, a procedure for a surgical robot.  The AV's
accidents-per-mission (APMi) is its per-mile rate scaled by the median
U.S. trip length.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..calibration.baselines import (
    AIRLINE_ACCIDENTS_PER_MISSION,
    AIRLINE_TRIPS_PER_YEAR,
    MEDIAN_TRIP_MILES,
    PROJECTED_AV_TRIPS_PER_YEAR,
    SURGICAL_ROBOT_ACCIDENTS_PER_MISSION,
)
from ..errors import InsufficientDataError
from ..pipeline.store import FailureDatabase
from .apm import apm_summary


@dataclass(frozen=True)
class MissionComparison:
    """One Table VIII row."""

    manufacturer: str
    apmi: float
    vs_airline: float
    vs_surgical_robot: float

    @property
    def safer_than_airline(self) -> bool:
        """Whether the AV beats airlines per mission."""
        return self.vs_airline < 1.0

    @property
    def safer_than_surgical_robot(self) -> bool:
        """Whether the AV beats surgical robots per mission."""
        return self.vs_surgical_robot < 1.0


def accidents_per_mission(apm: float,
                          trip_miles: float = MEDIAN_TRIP_MILES) -> float:
    """APMi = APM x median trip length."""
    if apm < 0 or trip_miles <= 0:
        raise InsufficientDataError(
            "APM must be non-negative and trip length positive")
    return apm * trip_miles


def mission_comparison(db: FailureDatabase,
                       manufacturers: list[str] | None = None,
                       ) -> dict[str, MissionComparison]:
    """Table VIII for every manufacturer with a computable APM."""
    out: dict[str, MissionComparison] = {}
    for name, summary in apm_summary(db, manufacturers).items():
        if summary.apm is None:
            continue
        apmi = accidents_per_mission(summary.apm)
        out[name] = MissionComparison(
            manufacturer=name,
            apmi=apmi,
            vs_airline=apmi / AIRLINE_ACCIDENTS_PER_MISSION,
            vs_surgical_robot=apmi / SURGICAL_ROBOT_ACCIDENTS_PER_MISSION,
        )
    return out


def projected_yearly_accidents(apmi: float) -> float:
    """Projected yearly AV accidents if all cars become AVs
    (the paper's ~96-billion-trips argument)."""
    if apmi < 0:
        raise InsufficientDataError("APMi must be non-negative")
    return apmi * PROJECTED_AV_TRIPS_PER_YEAR


def trips_ratio_vs_airlines() -> float:
    """How many more trips AVs would make than airlines (~10,000x)."""
    return PROJECTED_AV_TRIPS_PER_YEAR / AIRLINE_TRIPS_PER_YEAR
