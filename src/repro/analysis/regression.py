"""Ordinary least-squares linear regression (with log-log variant).

Used for the Fig. 5 and Fig. 9 trend lines.  Implemented directly on
top of numpy rather than scipy so the fit exposes exactly what the
figures need (slope, intercept, r-squared, standard errors).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InsufficientDataError


@dataclass(frozen=True)
class LinearFit:
    """OLS fit of ``y = slope * x + intercept``."""

    slope: float
    intercept: float
    r_squared: float
    slope_stderr: float
    n: int

    def predict(self, x: float | np.ndarray) -> float | np.ndarray:
        """Fitted value(s) at ``x``."""
        return self.slope * np.asarray(x, dtype=float) + self.intercept


def fit_linear(x: list[float] | np.ndarray,
               y: list[float] | np.ndarray) -> LinearFit:
    """Least-squares line through ``(x, y)``."""
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.size != ya.size:
        raise InsufficientDataError(
            f"x and y lengths differ: {xa.size} vs {ya.size}")
    if xa.size < 2:
        raise InsufficientDataError("need at least 2 points to fit a line")
    if np.allclose(xa, xa[0]):
        raise InsufficientDataError("x values are all identical")
    x_mean, y_mean = xa.mean(), ya.mean()
    sxx = float(np.sum((xa - x_mean) ** 2))
    sxy = float(np.sum((xa - x_mean) * (ya - y_mean)))
    slope = sxy / sxx
    intercept = y_mean - slope * x_mean
    residuals = ya - (slope * xa + intercept)
    ss_res = float(np.sum(residuals ** 2))
    ss_tot = float(np.sum((ya - y_mean) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    dof = xa.size - 2
    if dof > 0 and sxx > 0:
        stderr = float(np.sqrt(ss_res / dof / sxx))
    else:
        stderr = 0.0
    return LinearFit(
        slope=float(slope), intercept=float(intercept),
        r_squared=float(r_squared), slope_stderr=stderr, n=int(xa.size))


def fit_loglog(x: list[float] | np.ndarray,
               y: list[float] | np.ndarray) -> LinearFit:
    """Fit ``log10(y) = slope * log10(x) + intercept``.

    Non-positive points are excluded (they have no logarithm); the fit
    describes the power-law exponent the paper's Figs. 5/9 report.
    """
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    mask = (xa > 0) & (ya > 0)
    if mask.sum() < 2:
        raise InsufficientDataError(
            "need at least 2 positive points for a log-log fit")
    return fit_linear(np.log10(xa[mask]), np.log10(ya[mask]))
