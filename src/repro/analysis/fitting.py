"""Distribution fitting: exponentiated Weibull and exponential MLE.

Fig. 11 fits reaction times with an exponentiated Weibull; Fig. 12
fits collision speeds with exponentials.  Fits report a
Kolmogorov-Smirnov statistic as the goodness-of-fit measure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sstats

from ..errors import InsufficientDataError


@dataclass(frozen=True)
class ExponWeibullFit:
    """MLE fit of the exponentiated Weibull distribution."""

    a: float          # exponentiation shape
    c: float          # Weibull shape
    scale: float
    ks_statistic: float
    n: int

    def pdf(self, x: float | np.ndarray) -> np.ndarray:
        """Density at ``x``."""
        return sstats.exponweib.pdf(
            np.asarray(x, dtype=float), self.a, self.c, loc=0.0,
            scale=self.scale)

    @property
    def mean(self) -> float:
        """Mean of the fitted distribution."""
        return float(sstats.exponweib.mean(
            self.a, self.c, loc=0.0, scale=self.scale))

    @property
    def median(self) -> float:
        """Median of the fitted distribution."""
        return float(sstats.exponweib.median(
            self.a, self.c, loc=0.0, scale=self.scale))


@dataclass(frozen=True)
class ExponentialFit:
    """MLE fit of the exponential distribution (loc fixed at 0)."""

    scale: float
    ks_statistic: float
    n: int

    def pdf(self, x: float | np.ndarray) -> np.ndarray:
        """Density at ``x``."""
        return sstats.expon.pdf(
            np.asarray(x, dtype=float), loc=0.0, scale=self.scale)

    @property
    def mean(self) -> float:
        """Mean of the fitted distribution (equals the scale)."""
        return self.scale

    def cdf(self, x: float) -> float:
        """P(X <= x) under the fit."""
        return float(sstats.expon.cdf(x, loc=0.0, scale=self.scale))


def fit_exponweibull(values: list[float] | np.ndarray,
                     trim_above: float | None = None) -> ExponWeibullFit:
    """Fit an exponentiated Weibull to positive ``values``.

    ``trim_above`` excludes implausible outliers before fitting — the
    paper excludes Volkswagen's ~4-hour reaction time from its fits.
    """
    array = np.asarray(values, dtype=float)
    array = array[array > 0]
    if trim_above is not None:
        array = array[array <= trim_above]
    if array.size < 8:
        raise InsufficientDataError(
            f"need at least 8 positive values to fit, got {array.size}")
    a, c, _, scale = sstats.exponweib.fit(array, floc=0.0)
    ks = sstats.kstest(
        array, "exponweib", args=(a, c, 0.0, scale)).statistic
    return ExponWeibullFit(
        a=float(a), c=float(c), scale=float(scale),
        ks_statistic=float(ks), n=int(array.size))


def fit_exponential(values: list[float] | np.ndarray) -> ExponentialFit:
    """Fit an exponential distribution to non-negative ``values``."""
    array = np.asarray(values, dtype=float)
    array = array[array >= 0]
    if array.size < 3:
        raise InsufficientDataError(
            f"need at least 3 values to fit, got {array.size}")
    scale = float(array.mean())
    if scale <= 0:
        raise InsufficientDataError("all values are zero")
    ks = sstats.kstest(array, "expon", args=(0.0, scale)).statistic
    return ExponentialFit(
        scale=scale, ks_statistic=float(ks), n=int(array.size))


def histogram_density(values: list[float] | np.ndarray,
                      bins: int = 12) -> tuple[np.ndarray, np.ndarray]:
    """Empirical density histogram (bin centers, densities).

    The data series plotted alongside the fits in Figs. 11-12.
    """
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise InsufficientDataError("no values to histogram")
    densities, edges = np.histogram(array, bins=bins, density=True)
    centers = (edges[:-1] + edges[1:]) / 2.0
    return centers, densities
