"""Action-window risk model (Sec. V-A4).

The paper: "the detection time is indeed part of the end-to-end time
window in which the driver reacts to an adverse situation ... the
small size of the overall action window (detection time + reaction
time) can make the reaction-time-based accidents a frequent failure
mode."

This module makes that argument quantitative: given the fitted
reaction-time distribution and a detection-latency model, compute the
probability that (detection + reaction) exceeds the time budget a
traffic scenario allows — and how that risk scales with speed and
following distance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError, InsufficientDataError
from ..pipeline.store import FailureDatabase
from ..rng import child_generator
from .fitting import ExponWeibullFit

#: Feet per second per mph.
FT_PER_S_PER_MPH = 1.46667


@dataclass(frozen=True)
class DetectionModel:
    """Exponential fault-detection latency (seconds)."""

    mean_latency_s: float

    def __post_init__(self) -> None:
        if self.mean_latency_s < 0:
            raise AnalysisError("detection latency must be >= 0")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` detection latencies."""
        if self.mean_latency_s == 0:
            return np.zeros(n)
        return rng.exponential(self.mean_latency_s, size=n)


@dataclass(frozen=True)
class ActionWindowRisk:
    """Monte-Carlo estimate of P(response time > budget)."""

    budget_s: float
    exceed_probability: float
    mean_window_s: float
    p95_window_s: float
    samples: int


def time_budget_from_gap(gap_feet: float, closing_speed_mph: float,
                         ) -> float:
    """Time budget (s) to react before a gap closes at a speed."""
    if gap_feet <= 0:
        raise AnalysisError("gap must be positive")
    if closing_speed_mph <= 0:
        raise AnalysisError("closing speed must be positive")
    return gap_feet / (closing_speed_mph * FT_PER_S_PER_MPH)


def action_window_risk(reaction_fit: ExponWeibullFit,
                       detection: DetectionModel,
                       budget_s: float,
                       samples: int = 20000,
                       seed: int = 0) -> ActionWindowRisk:
    """P(detection + reaction exceeds ``budget_s``), by Monte Carlo."""
    if budget_s <= 0:
        raise AnalysisError("time budget must be positive")
    if samples < 100:
        raise AnalysisError("need at least 100 samples")
    rng = child_generator(seed, "action-window")
    from scipy import stats as sstats

    reactions = sstats.exponweib.rvs(
        reaction_fit.a, reaction_fit.c, scale=reaction_fit.scale,
        size=samples, random_state=rng)
    detections = detection.sample(samples, rng)
    windows = reactions + detections
    return ActionWindowRisk(
        budget_s=budget_s,
        exceed_probability=float(np.mean(windows > budget_s)),
        mean_window_s=float(windows.mean()),
        p95_window_s=float(np.percentile(windows, 95)),
        samples=samples,
    )


def risk_curve(reaction_fit: ExponWeibullFit,
               detection: DetectionModel,
               gap_feet: float,
               speeds_mph: list[float],
               samples: int = 20000,
               seed: int = 0) -> list[tuple[float, float]]:
    """(speed, exceed probability) for a fixed gap across speeds."""
    curve = []
    for speed in speeds_mph:
        budget = time_budget_from_gap(gap_feet, speed)
        risk = action_window_risk(
            reaction_fit, detection, budget, samples, seed)
        curve.append((speed, risk.exceed_probability))
    return curve


def manufacturer_risk(db: FailureDatabase, manufacturer: str,
                      budget_s: float,
                      detection_mean_s: float = 0.5,
                      samples: int = 20000,
                      seed: int = 0) -> ActionWindowRisk:
    """Action-window risk using a manufacturer's fitted reaction
    times."""
    from .alertness import fit_reaction_times

    try:
        fit = fit_reaction_times(db, manufacturer)
    except InsufficientDataError:
        raise
    return action_window_risk(
        fit, DetectionModel(detection_mean_s), budget_s, samples, seed)
