"""Command-line interface: ``python -m repro <command>``.

Commands::

    run        synthesize + process end to end, write the database JSON
    corpus     write the raw synthetic corpus to a directory
    process    run Stages II-IV over a corpus directory
    ingest     incrementally process a grown corpus (delta only)
    report     render paper tables/figures from a database JSON
    tag        tag free-text log lines with the failure dictionary
    stpa       overlay the tagged failures on the control structure
    inject     run a stochastic fault-injection campaign
    validate   score the NLP tagger against ground truth
    query      run one typed query against a database
    serve      expose a database over the embedded HTTP JSON API
    trace      render a saved span trace as a self-time table
    convert    migrate a database between JSON and columnar formats

Flag conventions (shared across subcommands): ``--db``/``--seed``
select the database source everywhere a command reads one;
``--quiet`` suppresses informational output; ``--json`` switches to
machine-readable JSON where the command produces output.  Deprecated
spellings (``repro query --pretty``) keep working as hidden aliases
that print a one-line warning.

Exit codes (documented in docs/USAGE.md): 0 success, 1 lint findings
at error severity, 2 invalid input (argparse errors, bad knob values,
malformed queries, corrupt or missing databases).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import __version__
from .errors import CorruptDatabaseError, SynthesisError
from .pipeline import (
    ChaosConfig,
    CrashController,
    CrashPoint,
    FailureDatabase,
    PipelineConfig,
    process_corpus,
    run_pipeline,
)
from .pipeline.chaos import CHAOS_KINDS, CRASH_POINTS
from .pipeline.config import STORAGE_BACKENDS
from .pipeline.parallel import WORKER_MODES
from .pipeline.resilience import POLICY_MODES
from .rng import DEFAULT_SEED


class _DeprecatedAlias(argparse.Action):
    """A hidden compatibility spelling for a renamed flag.

    Behaves like ``store_true`` on the *new* destination, stays out of
    ``--help`` (``help=argparse.SUPPRESS``), and prints a one-line
    deprecation warning to stderr when actually used.
    """

    def __init__(self, option_strings, dest, replacement="",
                 **kwargs) -> None:
        kwargs.setdefault("help", argparse.SUPPRESS)
        kwargs.setdefault("nargs", 0)
        super().__init__(option_strings, dest, **kwargs)
        self.replacement = replacement

    def __call__(self, parser, namespace, values,
                 option_string=None) -> None:
        print(f"warning: {option_string} is deprecated; "
              f"use {self.replacement}", file=sys.stderr)
        setattr(namespace, self.dest, True)


def _db_options() -> argparse.ArgumentParser:
    """Shared ``--db``/``--seed`` parent for database-reading verbs."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("database source")
    group.add_argument("--db",
                       help="database JSON from 'repro run' (default: "
                            "run the pipeline first)")
    group.add_argument("--seed", type=int, default=DEFAULT_SEED,
                       help="pipeline seed when no --db is given "
                            "(default: %(default)s)")
    return parent


def _output_options(json_help: str = "emit machine-readable JSON "
                                     "instead of text",
                    ) -> argparse.ArgumentParser:
    """Shared ``--quiet``/``--json`` parent for verbs with output."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("output")
    group.add_argument("--quiet", action="store_true",
                       help="suppress informational output")
    group.add_argument("--json", action="store_true", help=json_help)
    return parent


def _add_pipeline_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="corpus/OCR seed (default: %(default)s)")
    parser.add_argument("--manufacturers", nargs="*", default=None,
                        help="restrict to these manufacturers")
    parser.add_argument("--no-ocr", action="store_true",
                        help="disable the OCR noise channel")
    parser.add_argument("--no-correction", action="store_true",
                        help="disable the post-OCR correction pass")
    parser.add_argument("--dictionary", choices=("seed", "expanded"),
                        default="expanded",
                        help="failure-dictionary mode")
    parser.add_argument("--drop-planned", action="store_true",
                        help="drop planned-test disengagements")
    parser.add_argument("--failure-policy", choices=POLICY_MODES,
                        default="quarantine",
                        help="reaction to unexpected stage failures "
                             "(default: %(default)s)")
    parser.add_argument("--max-error-rate", type=float, default=0.1,
                        help="threshold mode: abort past this "
                             "per-stage error rate "
                             "(default: %(default)s)")
    parser.add_argument("--max-retries", type=int, default=2,
                        help="bounded retries for transient faults "
                             "(default: %(default)s)")
    parser.add_argument("--chaos-stage", default=None,
                        choices=("ocr", "parse", "normalize",
                                 "dictionary", "tag"),
                        help="inject faults into this stage")
    parser.add_argument("--chaos-rate", type=float, default=0.1,
                        help="per-unit fault injection probability "
                             "(default: %(default)s)")
    parser.add_argument("--chaos-kind", choices=CHAOS_KINDS,
                        default="exception",
                        help="kind of fault to inject "
                             "(default: %(default)s)")
    parser.add_argument("--crash-at", choices=CRASH_POINTS,
                        default=None,
                        help="simulate a hard crash at this pipeline "
                             "boundary (crash-recovery testing)")
    parser.add_argument("--checkpoint-dir", default=None,
                        help="journal completed work here so a killed "
                             "run can be resumed")
    parser.add_argument("--resume", action="store_true",
                        help="restore completed units from "
                             "--checkpoint-dir instead of recomputing")
    parser.add_argument("--no-checkpoint", action="store_true",
                        help="disable checkpointing even when "
                             "--checkpoint-dir is set")
    parser.add_argument("--workers", type=int, default=0,
                        help="fan Stage II-III out across this many "
                             "workers (0 = serial; output is "
                             "byte-identical either way)")
    parser.add_argument("--worker-mode", choices=WORKER_MODES,
                        default="auto",
                        help="worker pool kind (default: %(default)s; "
                             "auto picks processes at >= 2 workers)")
    parser.add_argument("--batch-size", default="auto",
                        help="units per dispatched worker chunk "
                             "(default: auto = spread each stage over "
                             "~4 chunks per worker; output is "
                             "byte-identical at any size)")
    parser.add_argument("--trace", action="store_true",
                        help="record a run -> stage -> unit span trace "
                             "(trace.jsonl; see 'repro trace')")
    parser.add_argument("--trace-dir", default=None,
                        help="write trace.jsonl into this directory "
                             "(implies --trace; default: working "
                             "directory)")
    parser.add_argument("--metrics", action="store_true",
                        help="collect run metrics (stage durations, "
                             "unit/retry/quarantine/cache counters)")
    parser.add_argument("--storage", choices=STORAGE_BACKENDS,
                        default="dict",
                        help="in-memory database layout (columnar = "
                             "struct-of-arrays; output bytes are "
                             "identical either way; default: "
                             "%(default)s)")


def _parse_batch_size(value: str | None) -> int | None:
    """``--batch-size`` operand: ``auto`` (None) or an integer.

    Raises ValueError (not SystemExit) so main() reports it through
    the same exit-code-2 path as the config knob validation.
    """
    if value is None or value == "auto":
        return None
    try:
        return int(value)
    except ValueError:
        raise ValueError(
            f"--batch-size must be an integer or 'auto', got {value!r}"
        ) from None


def _config_from(args: argparse.Namespace) -> PipelineConfig:
    # ChaosConfig / PipelineConfig validate their knobs (rates in
    # [0, 1], non-negative retries, resume needing a directory, ...)
    # and raise ValueError with a precise message; main() turns that
    # into a clean exit-code-2 diagnostic instead of a traceback.
    chaos = None
    if args.chaos_stage is not None:
        chaos = ChaosConfig(stage=args.chaos_stage,
                            rate=args.chaos_rate,
                            kind=args.chaos_kind)
    crash = (CrashPoint(at=args.crash_at)
             if args.crash_at is not None else None)
    return PipelineConfig(
        seed=args.seed,
        manufacturers=args.manufacturers,
        ocr_enabled=not args.no_ocr,
        correction_enabled=not args.no_correction,
        dictionary_mode=args.dictionary,
        drop_planned=args.drop_planned,
        failure_policy=args.failure_policy,
        max_error_rate=args.max_error_rate,
        max_retries=args.max_retries,
        chaos=chaos,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        checkpoint_enabled=not args.no_checkpoint,
        crash=crash,
        workers=args.workers,
        worker_mode=args.worker_mode,
        batch_size=_parse_batch_size(args.batch_size),
        trace_enabled=args.trace,
        trace_dir=args.trace_dir,
        metrics_enabled=args.metrics,
        storage_backend=args.storage,
    )


def _print_run_summary(result) -> None:
    db = result.database
    diagnostics = result.diagnostics
    print(f"disengagements: {len(db.disengagements)}")
    print(f"accidents:      {len(db.accidents)}")
    print(f"miles:          {db.total_miles:,.0f}")
    print(f"ocr confidence: {diagnostics.ocr.mean_confidence:.3f} "
          f"({diagnostics.ocr.fallback_pages} pages transcribed "
          "manually)")
    if diagnostics.tagging is not None:
        print(f"tag accuracy:   "
              f"{diagnostics.tagging.tag_accuracy:.2%}")
    from .reporting.summary import render_run_health

    print(render_run_health(diagnostics.health,
                            result.database.quarantine,
                            parallel=diagnostics.parallel))
    if diagnostics.trace_path is not None:
        print(f"trace:          {diagnostics.trace_path} "
              "(render with 'repro trace')")
    if diagnostics.metrics is not None:
        from .reporting.summary import render_metrics_summary

        print(render_metrics_summary(diagnostics.metrics))


def _run_payload(result, out: str | None) -> dict:
    """The ``--json`` form of a run/process summary."""
    db = result.database
    diagnostics = result.diagnostics
    payload: dict = {
        "disengagements": len(db.disengagements),
        "accidents": len(db.accidents),
        "miles": db.total_miles,
        "ocr": {
            "mean_confidence": diagnostics.ocr.mean_confidence,
            "fallback_pages": diagnostics.ocr.fallback_pages,
        },
        "tag_accuracy": (diagnostics.tagging.tag_accuracy
                         if diagnostics.tagging is not None else None),
        "health": diagnostics.health.summary(),
        "parallel": diagnostics.parallel.summary(),
    }
    if diagnostics.trace_path is not None:
        payload["trace_path"] = diagnostics.trace_path
    if diagnostics.metrics is not None:
        payload["metrics"] = diagnostics.metrics
    if out:
        payload["saved_to"] = out
    return payload


def _save_database(result, out: str, quiet: bool = False) -> None:
    """Atomic save, honoring a configured ``save`` kill point."""
    result.database.save(
        out, crash=CrashController(result.config.crash))
    if not quiet:
        print(f"database written to {out}")


def _finish_run(result, args: argparse.Namespace) -> int:
    """Shared run/process epilogue: report, then save."""
    if args.json:
        if args.out:
            _save_database(result, args.out, quiet=True)
        print(json.dumps(_run_payload(result, args.out), indent=2))
        return 0
    if not args.quiet:
        _print_run_summary(result)
    if args.out:
        _save_database(result, args.out, quiet=args.quiet)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    result = run_pipeline(_config_from(args))
    return _finish_run(result, args)


def _cmd_corpus(args: argparse.Namespace) -> int:
    from .synth import generate_corpus
    from .synth.io import write_corpus

    corpus = generate_corpus(args.seed, args.manufacturers)
    root = write_corpus(corpus, args.out)
    if args.json:
        print(json.dumps({"documents": len(corpus.documents),
                          "root": str(root)}, indent=2))
    elif not args.quiet:
        print(f"{len(corpus.documents)} documents written under "
              f"{root}")
    return 0


def _cmd_process(args: argparse.Namespace) -> int:
    from .synth.io import read_corpus

    corpus = read_corpus(args.corpus, with_truth=not args.no_truth)
    result = process_corpus(corpus, _config_from(args))
    return _finish_run(result, args)


def _print_ingest_summary(report) -> None:
    mode = ("full rebuild" if report.full_rebuild else "incremental")
    detail = f" ({report.reason})" if report.reason else ""
    print(f"ingest:         {mode}{detail}")
    print(f"documents:      {report.total_documents} total / "
          f"{report.new_documents} new / "
          f"{report.changed_documents} changed / "
          f"{report.reused_documents} reused")
    for note in report.notes:
        print(f"  note: {note}")


def _cmd_ingest(args: argparse.Namespace) -> int:
    from .pipeline.ingest import ingest_corpus
    from .synth.io import read_corpus

    corpus = read_corpus(args.corpus, with_truth=not args.no_truth)
    ingest = ingest_corpus(corpus, _config_from(args))
    report = ingest.report
    if args.json:
        if args.out:
            _save_database(ingest.result, args.out, quiet=True)
        payload = _run_payload(ingest.result, args.out)
        payload["ingest"] = report.to_dict()
        print(json.dumps(payload, indent=2))
        return 0
    if not args.quiet:
        _print_ingest_summary(report)
        _print_run_summary(ingest.result)
    if args.out:
        _save_database(ingest.result, args.out, quiet=args.quiet)
    return 0


def _load_db(args: argparse.Namespace) -> FailureDatabase:
    if args.db:
        # api.load_database translates a missing file into the same
        # CorruptDatabaseError the integrity checks raise, so every
        # verb exits 2 with a structured message instead of a
        # traceback.
        from .api import load_database

        return load_database(args.db)
    if not getattr(args, "quiet", False):
        print("no --db given; running the pipeline first...",
              file=sys.stderr)
    return run_pipeline(PipelineConfig(seed=args.seed)).database


def _cmd_report(args: argparse.Namespace) -> int:
    from .reporting import EXPERIMENTS, run_experiment

    db = _load_db(args)
    wanted = (list(EXPERIMENTS) if "all" in args.experiments
              else args.experiments)
    unknown = [e for e in wanted if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}; "
              f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    rendered = {experiment_id: run_experiment(experiment_id,
                                              db).render()
                for experiment_id in wanted}
    if args.json and not args.out:
        print(json.dumps({"experiments": rendered}, indent=2))
        return 0
    for experiment_id, text in rendered.items():
        if args.out:
            directory = Path(args.out)
            directory.mkdir(parents=True, exist_ok=True)
            (directory / f"{experiment_id}.txt").write_text(
                text + "\n", encoding="utf-8")
            if not args.quiet:
                print(f"wrote {directory / f'{experiment_id}.txt'}")
        else:
            print(text)
            print()
    return 0


def _cmd_tag(args: argparse.Namespace) -> int:
    from .nlp import FailureDictionary, VotingTagger

    if args.db:
        from .api import load_database

        db = load_database(args.db)
        dictionary = FailureDictionary.build(
            [r.description for r in db.disengagements])
    else:
        dictionary = FailureDictionary.from_seeds()
    tagger = VotingTagger(dictionary)
    lines = args.text or [l.rstrip("\n") for l in sys.stdin]
    for line in lines:
        if not line.strip():
            continue
        result = tagger.tag(line)
        if args.json:
            print(json.dumps({
                "text": line,
                "tag": result.tag.value,
                "category": result.category.value,
                "confident": result.confident,
            }))
            continue
        confidence = "" if result.confident else " (low confidence)"
        print(f"{result.tag.display_name} | {result.category} | "
              f"{line}{confidence}")
    return 0


def _cmd_stpa(args: argparse.Namespace) -> int:
    from .stpa import overlay_failures

    db = _load_db(args)
    overlay = overlay_failures(db.disengagements)
    localized = overlay.total - overlay.unlocalized
    if args.json:
        print(json.dumps({
            "total": overlay.total,
            "unlocalized": overlay.unlocalized,
            "by_component": dict(overlay.by_component),
            "loops": overlay.loop_counts(),
        }, indent=2))
        return 0
    print(f"{overlay.total} failures overlaid "
          f"({overlay.unlocalized} unlocalized)")
    for component, count in overlay.by_component.most_common():
        print(f"  {component:20s} {count:5d} "
              f"({count / localized:.1%})")
    print("per control loop:")
    for name, count in overlay.loop_counts().items():
        print(f"  {name}: {count}")
    return 0


def _cmd_inject(args: argparse.Namespace) -> int:
    from .stpa.fault_injection import FaultInjector

    injector = FaultInjector()
    campaign = injector.run_campaign(
        injections_per_component=args.injections, seed=args.seed)
    if args.json:
        print(json.dumps({
            "injections": len(campaign.outcomes),
            "per_component": campaign.injections_per_component,
            "origins": {
                origin: {
                    "hazard_rate": rate,
                    "detection_rate": campaign.detection_rate(origin),
                }
                for origin, rate in campaign.hazard_ranking()
            },
        }, indent=2))
        return 0
    print(f"{len(campaign.outcomes)} injections "
          f"({campaign.injections_per_component} per component)")
    print("hazard rate by fault origin:")
    for origin, rate in campaign.hazard_ranking():
        detection = campaign.detection_rate(origin)
        print(f"  {origin:20s} hazard {rate:.2%}  "
              f"detected {detection:.2%}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .pipeline.lint import errors, lint_database

    db = _load_db(args)
    findings = lint_database(db)
    error_count = len(errors(findings))
    if args.json:
        print(json.dumps({
            "findings": [str(f) for f in findings],
            "errors": error_count,
        }, indent=2))
        return 1 if error_count else 0
    if not args.quiet:
        for finding in findings:
            print(finding)
    print(f"{len(findings)} finding(s), {error_count} error(s)")
    return 1 if error_count else 0


def _cmd_summary(args: argparse.Namespace) -> int:
    from .reporting.summary import render_study_report

    db = _load_db(args)
    report = render_study_report(db, include_charts=not args.no_charts)
    if args.out:
        Path(args.out).write_text(report + "\n", encoding="utf-8")
        if not args.quiet:
            print(f"report written to {args.out}")
    else:
        print(report)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .nlp import FailureDictionary, VotingTagger, evaluate_tagger
    from .nlp.evaluation import per_manufacturer_accuracy

    db = _load_db(args)
    records = [r for r in db.disengagements if r.truth_tag is not None]
    if not records:
        print("database carries no ground-truth tags", file=sys.stderr)
        return 2
    tagger = VotingTagger(FailureDictionary.build(
        [r.description for r in records]))
    report = evaluate_tagger(tagger, records)
    per_manufacturer = per_manufacturer_accuracy(tagger, records)
    if args.json:
        print(json.dumps({
            "tag_accuracy": report.tag_accuracy,
            "category_accuracy": report.category_accuracy,
            "confusions": [
                {"truth": truth.value, "predicted": predicted.value,
                 "count": count}
                for (truth, predicted), count
                in report.top_confusions(5)
            ],
            "per_manufacturer": per_manufacturer,
        }, indent=2))
        return 0
    print(f"tag accuracy:      {report.tag_accuracy:.2%}")
    print(f"category accuracy: {report.category_accuracy:.2%}")
    print("top confusions:")
    for (truth, predicted), count in report.top_confusions(5):
        print(f"  {truth.display_name} -> {predicted.display_name} "
              f"x{count}")
    print("per manufacturer:")
    for name, accuracy in per_manufacturer.items():
        print(f"  {name:15s} {accuracy:.2%}")
    return 0


def _query_from_args(args: argparse.Namespace):
    from .query import Query

    data = {"metric": args.metric}
    if args.group_by:
        data["group_by"] = args.group_by
    if args.manufacturer:
        data["manufacturers"] = tuple(args.manufacturer)
    for key in ("month_from", "month_to", "tag", "category"):
        value = getattr(args, key)
        if value:
            data[key] = value
    return Query.from_dict(data)


def _cmd_query(args: argparse.Namespace) -> int:
    from .query import QueryEngine

    engine = QueryEngine(_load_db(args))
    result = engine.execute(_query_from_args(args))
    # Query output is always JSON; --json upgrades it to the indented
    # human-friendly form (the role --pretty used to play).
    indent = 2 if args.json else None
    print(json.dumps(result.to_dict(), indent=indent))
    return 0


def _cmd_serve_prefork(args: argparse.Namespace) -> int:
    from .serving import serve_prefork

    if args.db:
        db_path = args.db
    else:
        # Workers load the database from a file, so a pipeline-built
        # database must hit disk first.
        import tempfile

        if not args.quiet:
            print("no --db given; running the pipeline first...",
                  file=sys.stderr)
        db = run_pipeline(PipelineConfig(seed=args.seed)).database
        handle = tempfile.NamedTemporaryFile(
            mode="w", suffix=".json", prefix="repro-db-",
            delete=False)
        handle.close()
        db.save(handle.name)
        db_path = handle.name
    serve_prefork(db_path, host=args.host, port=args.port,
                  processes=args.processes,
                  cache_size=args.cache_size,
                  max_inflight=args.max_inflight,
                  deadline_s=args.deadline,
                  index_backend=args.index_backend,
                  shards=args.shards,
                  verbose=not args.quiet,
                  watch=args.watch,
                  watch_interval_s=args.watch_interval)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .query import QueryServer
    from .reporting.summary import render_query_stats

    if args.processes:
        return _cmd_serve_prefork(args)
    engine_db = _load_db(args)
    server = QueryServer(engine_db, host=args.host, port=args.port,
                         cache_size=args.cache_size,
                         verbose=not args.quiet,
                         max_inflight=args.max_inflight,
                         deadline_s=args.deadline,
                         index_backend=args.index_backend,
                         shards=args.shards)
    if args.watch:
        server.watch(args.watch, args.watch_interval)
    if not args.quiet:
        watching = (f", watching {args.watch} for drops"
                    if args.watch else "")
        print(f"serving {len(engine_db.disengagements)} "
              f"disengagements / {len(engine_db.accidents)} accidents "
              f"on {server.url}{watching} "
              "(Ctrl-C to stop; metrics on /metrics)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        stats = server.engine.stats()
        if args.json:
            print(json.dumps(stats, indent=2))
        elif not args.quiet:
            print()
            print(render_query_stats(stats))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .api import load_trace, self_times
    from .reporting.summary import render_trace_summary

    path = Path(args.path)
    if not path.exists():
        raise ValueError(
            f"trace file {str(path)!r} does not exist "
            "(record one with 'repro run --trace')")
    spans = load_trace(path)
    if not spans:
        raise ValueError(
            f"trace file {str(path)!r} contains no spans")
    rows = self_times(spans)
    if args.json:
        print(json.dumps({"spans": len(spans), "rows": rows},
                         indent=2))
        return 0
    if not args.quiet:
        print(f"{len(spans)} span(s) in {path}")
    print(render_trace_summary(rows))
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    from .storage import (
        detect_storage_format,
        load_any,
        save_columnar,
    )

    source = Path(args.input)
    if not source.exists():
        raise ValueError(
            f"database file {str(source)!r} does not exist")
    source_format = detect_storage_format(source)
    target = args.to or ("json" if source_format == "columnar"
                         else "columnar")
    db = load_any(source, verify_checksum=not args.no_checksum)
    if target == "columnar":
        from .storage import load_columnar

        save_columnar(db, args.output)
        reloaded = load_columnar(args.output)
    else:
        db.save(args.output)
        reloaded = FailureDatabase.load(args.output)
    # The round trip is the verification: whatever the on-disk layout,
    # the content hash must survive the format change bit for bit.
    before, after = db.fingerprint(), reloaded.fingerprint()
    if before != after:
        raise CorruptDatabaseError(
            f"fingerprint changed across conversion "
            f"({before[:12]} -> {after[:12]})",
            path=str(args.output), reason="fingerprint-mismatch")
    if args.json:
        print(json.dumps({"convert": {
            "input": str(source),
            "source_format": source_format,
            "output": str(args.output),
            "target_format": target,
            "fingerprint": after,
            "disengagements": len(reloaded.disengagements),
            "accidents": len(reloaded.accidents),
            "mileage_cells": len(reloaded.mileage),
        }}, indent=2))
        return 0
    if not args.quiet:
        print(f"{source_format} -> {target}: {args.output} "
              f"(fingerprint {after[:12]} verified)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AV disengagement/accident analysis pipeline "
                    "(DSN 2018 reproduction)")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    # Shared flag groups: db selects the database source for every
    # verb that reads one; out is the --quiet/--json pair every verb
    # with output accepts.  Defining them once keeps spellings, help
    # strings, and defaults from drifting between subcommands.
    db = _db_options()
    out = _output_options()

    run = commands.add_parser(
        "run", help="synthesize + process end to end", parents=[out])
    _add_pipeline_options(run)
    run.add_argument("--out", help="write the database JSON here")
    run.set_defaults(handler=_cmd_run)

    corpus = commands.add_parser(
        "corpus", help="write the raw synthetic corpus to a directory",
        parents=[out])
    corpus.add_argument("--seed", type=int, default=DEFAULT_SEED)
    corpus.add_argument("--manufacturers", nargs="*", default=None)
    corpus.add_argument("--out", required=True)
    corpus.set_defaults(handler=_cmd_corpus)

    process = commands.add_parser(
        "process", help="run Stages II-IV over a corpus directory",
        parents=[out])
    _add_pipeline_options(process)
    process.add_argument("--corpus", required=True,
                         help="directory written by 'repro corpus'")
    process.add_argument("--no-truth", action="store_true",
                         help="ignore the ground-truth sidecar")
    process.add_argument("--out", help="write the database JSON here")
    process.set_defaults(handler=_cmd_process)

    ingest = commands.add_parser(
        "ingest",
        help="incrementally process a grown corpus directory "
             "(recompute only new/changed documents; output is "
             "byte-identical to a full rebuild)",
        parents=[out])
    _add_pipeline_options(ingest)
    ingest.add_argument("--corpus", required=True,
                        help="directory written by 'repro corpus' "
                             "(the combined corpus, not just the "
                             "delta)")
    ingest.add_argument("--no-truth", action="store_true",
                        help="ignore the ground-truth sidecar")
    ingest.add_argument("--out", help="write the database JSON here")
    ingest.set_defaults(handler=_cmd_ingest)

    report = commands.add_parser(
        "report", help="render paper tables/figures",
        parents=[db, out])
    report.add_argument("experiments", nargs="+",
                        help="experiment ids (e.g. table7 figure8) "
                             "or 'all'")
    report.add_argument("--out", help="write exhibits to a directory")
    report.set_defaults(handler=_cmd_report)

    tag = commands.add_parser(
        "tag", help="tag log lines with the failure dictionary",
        parents=[out])
    tag.add_argument("text", nargs="*",
                     help="log lines (default: read stdin)")
    tag.add_argument("--db", help="build the dictionary from this "
                                  "database (default: seeds only)")
    tag.set_defaults(handler=_cmd_tag)

    stpa = commands.add_parser(
        "stpa", help="overlay failures on the control structure",
        parents=[db, out])
    stpa.set_defaults(handler=_cmd_stpa)

    inject = commands.add_parser(
        "inject", help="stochastic fault-injection campaign",
        parents=[out])
    inject.add_argument("--injections", type=int, default=1000,
                        help="injections per component")
    inject.add_argument("--seed", type=int, default=DEFAULT_SEED)
    inject.set_defaults(handler=_cmd_inject)

    lint = commands.add_parser(
        "lint", help="check a database for consistency problems",
        parents=[db, out])
    lint.set_defaults(handler=_cmd_lint)

    summary = commands.add_parser(
        "summary", help="render the full study report (Markdown)",
        parents=[db, out])
    summary.add_argument("--out", help="write the report here")
    summary.add_argument("--no-charts", action="store_true",
                         help="omit the ASCII charts")
    summary.set_defaults(handler=_cmd_summary)

    validate = commands.add_parser(
        "validate", help="score the NLP tagger against ground truth",
        parents=[db, out])
    validate.set_defaults(handler=_cmd_validate)

    from .query.engine import GROUP_BYS, METRICS

    query = commands.add_parser(
        "query", help="run one typed query against a database",
        parents=[db, _output_options(
            json_help="indent the JSON output")])
    query.add_argument("metric", choices=METRICS,
                       help="what to compute")
    query.add_argument("--group-by", choices=GROUP_BYS, default=None,
                       help="slice dimension (default: the metric's "
                            "natural grouping)")
    query.add_argument("--manufacturer", action="append", default=[],
                       help="restrict to this manufacturer "
                            "(repeatable)")
    query.add_argument("--month-from", default=None,
                       help="inclusive YYYY-MM lower bound")
    query.add_argument("--month-to", default=None,
                       help="inclusive YYYY-MM upper bound")
    query.add_argument("--tag", default=None,
                       help="restrict disengagements to one fault tag")
    query.add_argument("--category", default=None,
                       help="restrict disengagements to one failure "
                            "category")
    query.add_argument("--pretty", action=_DeprecatedAlias,
                       dest="json", replacement="--json")
    query.set_defaults(handler=_cmd_query)

    serve = commands.add_parser(
        "serve", help="expose a database over the HTTP JSON API",
        parents=[db, _output_options(
            json_help="print engine statistics as JSON on shutdown")])
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8350,
                       help="TCP port (0 picks a free one; "
                            "default: %(default)s)")
    serve.add_argument("--cache-size", type=int, default=256,
                       help="bounded LRU result-cache capacity "
                            "(default: %(default)s)")
    serve.add_argument("--watch", default=None, metavar="DIR",
                       help="poll this directory for database JSON "
                            "drops and hot-swap each one in (corrupt "
                            "drops are quarantined; the last good "
                            "snapshot keeps serving)")
    serve.add_argument("--watch-interval", type=float, default=2.0,
                       metavar="SECONDS",
                       help="poll interval for --watch "
                            "(default: %(default)s)")
    serve.add_argument("--max-inflight", type=int, default=64,
                       help="admission control: bound on concurrently "
                            "handled requests; excess load is shed "
                            "with 503 + Retry-After (0 = unbounded; "
                            "default: %(default)s)")
    serve.add_argument("--deadline", type=float, default=10.0,
                       metavar="SECONDS",
                       help="per-request budget; a blown deadline "
                            "returns a structured 503 (0 = none; "
                            "default: %(default)s)")
    serve.add_argument("--processes", type=int, default=0,
                       metavar="N",
                       help="pre-fork N worker processes sharing the "
                            "port (SO_REUSEPORT where available) with "
                            "crash-respawn and graceful drain; 0 = "
                            "single-process threaded server "
                            "(default: %(default)s)")
    serve.add_argument("--index-backend", default="monolithic",
                       choices=("monolithic", "sharded"),
                       help="index layout: one monolithic index, or "
                            "manufacturer shards with byte-identical "
                            "responses (default: %(default)s)")
    serve.add_argument("--shards", type=int, default=8,
                       metavar="N",
                       help="shard count for --index-backend sharded "
                            "(capped at the manufacturer count; "
                            "default: %(default)s)")
    serve.set_defaults(handler=_cmd_serve)

    trace = commands.add_parser(
        "trace", help="render a saved span trace (trace.jsonl) as a "
                      "self-time table",
        parents=[out])
    trace.add_argument("path", nargs="?", default="trace.jsonl",
                       help="trace file from a --trace run "
                            "(default: %(default)s)")
    trace.set_defaults(handler=_cmd_trace)

    convert = commands.add_parser(
        "convert",
        help="migrate a database between JSON and columnar formats",
        parents=[out])
    convert.add_argument("input",
                         help="source database (format auto-detected "
                              "from the file's magic bytes)")
    convert.add_argument("output", help="destination path")
    convert.add_argument("--to", choices=("columnar", "json"),
                         default=None,
                         help="target format (default: the opposite "
                              "of the input's)")
    convert.add_argument("--no-checksum", action="store_true",
                         help="skip .sha256 sidecar verification when "
                              "reading the input")
    convert.set_defaults(handler=_cmd_convert)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point.

    Invalid knob combinations (chaos rates outside [0, 1], negative
    retries, ``--resume`` without ``--checkpoint-dir``, ...) exit with
    status 2 and the validation message, argparse-style.  A
    :class:`~repro.pipeline.chaos.SimulatedCrash` is *not* caught: a
    simulated hard crash must die exactly like a real one.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ValueError, CorruptDatabaseError, SynthesisError) as exc:
        print(f"{parser.prog}: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
