"""Generators for Figures 4-12, computed from the failure database."""

from __future__ import annotations

from ..analysis.alertness import (
    OUTLIER_THRESHOLD_S,
    alertness_summary,
    fit_reaction_times,
    overall_mean_reaction_time,
)
from ..analysis.apm import collision_speed_distributions
from ..analysis.categories import tag_fractions
from ..analysis.dpm import (
    manufacturer_dpm_summary,
    monthly_series,
    yearly_dpm_distributions,
)
from ..analysis.fitting import histogram_density
from ..analysis.maturity import (
    all_assessments,
    cumulative_curve,
    pooled_dpm_correlation,
)
from ..analysis.stats import boxplot_stats
from ..errors import InsufficientDataError
from ..pipeline.store import FailureDatabase
from .figures import BoxSeries, FigureData, Series
from .tables_paper import ANALYSIS_ORDER

#: Fig. 4/7 manufacturer order (top to bottom in the paper).
FIG4_ORDER = ("Mercedes-Benz", "Volkswagen", "Waymo", "Delphi",
              "Nissan", "Bosch", "GMCruise", "Tesla")


def _analysis_names(db: FailureDatabase) -> list[str]:
    present = set(db.manufacturers())
    return [name for name in ANALYSIS_ORDER if name in present]


def figure2(db: FailureDatabase | None = None) -> FigureData:
    """Fig. 2: the two accident scenarios as event chains.

    Static case-study content; ``db`` accepted for registry
    uniformity.
    """
    del db
    from ..casestudies import CASE_STUDIES

    figure = FigureData(
        figure_id="Figure 2",
        title="Accident scenarios (Section II case studies)",
        xlabel="time (s)", ylabel="actor")
    for case in CASE_STUDIES:
        figure.annotations.append(f"{case.name} — {case.location}")
        for event in case.events:
            figure.annotations.append(
                f"  t={event.at_seconds:4.1f}s  {event.actor:20s} "
                f"{event.action}")
        figure.notes.append(
            f"{case.name}: tags={', '.join(t.display_name for t in case.tags)}; "
            f"loop={case.control_loop}; legally at fault: "
            f"{case.at_fault_legally}")
    return figure


def figure3(db: FailureDatabase | None = None) -> FigureData:
    """Fig. 3: the hierarchical control structure.

    Rendered as a text outline plus the DOT form; ``db``, when given,
    highlights components by observed failure counts.
    """
    from ..stpa import build_control_structure, overlay_failures
    from ..stpa.render import to_dot, to_outline

    structure = build_control_structure()
    figure = FigureData(
        figure_id="Figure 3",
        title="AV hierarchical control structure (STPA)")
    highlight: dict[str, int] = {}
    if db is not None and db.disengagements:
        overlay = overlay_failures(db.disengagements)
        highlight = dict(overlay.by_component)
        for component, count in overlay.by_component.most_common():
            figure.annotations.append(
                f"{component}: {count} observed failures")
    figure.notes.append(to_outline(structure))
    figure.notes.append(to_dot(structure, highlight=highlight))
    return figure


def figure4(db: FailureDatabase) -> FigureData:
    """Fig. 4: distribution of DPM per car across manufacturers."""
    figure = FigureData(
        figure_id="Figure 4",
        title="Distributions of DPM per car across manufacturers",
        xlabel="manufacturer", ylabel="disengagements / mile")
    summaries = manufacturer_dpm_summary(db, _analysis_names(db))
    for name in FIG4_ORDER:
        summary = summaries.get(name)
        if summary is None:
            continue
        figure.boxes.append(BoxSeries(label=name, box=summary.box))
        figure.notes.append(
            f"{name}: unit={summary.unit}, aggregate DPM="
            f"{summary.aggregate_dpm:.3g}")
    return figure


def figure5(db: FailureDatabase) -> FigureData:
    """Fig. 5: cumulative disengagements vs cumulative miles (log-log)
    with linear regression fits."""
    figure = FigureData(
        figure_id="Figure 5",
        title=("Disengagements per cumulative miles driven "
               "(log-log, linear fits)"),
        xlabel="cumulative distance (miles)",
        ylabel="cumulative disengagements")
    assessments = all_assessments(db, _analysis_names(db))
    for name in _analysis_names(db):
        assessment = assessments.get(name)
        if assessment is None:
            continue
        miles, events = cumulative_curve(db, name)
        fit = assessment.cumulative_fit
        figure.series.append(Series(
            name=name, x=miles, y=[float(e) for e in events],
            annotation=(f"loglog slope={fit.slope:.3f} "
                        f"r2={fit.r_squared:.3f}")))
    return figure


def figure6(db: FailureDatabase) -> FigureData:
    """Fig. 6: fraction of disengagements per fault tag (stacked)."""
    figure = FigureData(
        figure_id="Figure 6",
        title="Fault tags that led to disengagements, by manufacturer",
        xlabel="manufacturer", ylabel="fraction of disengagements")
    fractions = tag_fractions(
        db, ["Delphi", "Nissan", "Tesla", "Volkswagen", "Waymo"])
    for name, tags in fractions.items():
        for tag_name, fraction in sorted(
                tags.items(), key=lambda kv: -kv[1]):
            figure.annotations.append(
                f"{name}: {tag_name} = {fraction:.3f}")
    return figure


def figure7(db: FailureDatabase) -> FigureData:
    """Fig. 7: time evolution (by year) of DPM distributions."""
    figure = FigureData(
        figure_id="Figure 7",
        title="Yearly evolution of per-car DPM distributions",
        xlabel="disengagements / mile", ylabel="manufacturer x year")
    yearly = yearly_dpm_distributions(db, _analysis_names(db))
    for name in FIG4_ORDER:
        per_year = yearly.get(name)
        if not per_year:
            continue
        for year, values in per_year.items():
            positive = [v for v in values]
            if not positive:
                continue
            figure.boxes.append(BoxSeries(
                label=f"{name} {year}", box=boxplot_stats(positive)))
    return figure


def figure8(db: FailureDatabase) -> FigureData:
    """Fig. 8: pooled log(DPM) vs log(cumulative miles) correlation."""
    figure = FigureData(
        figure_id="Figure 8",
        title="log(DPM) vs log(cumulative miles), pooled",
        xlabel="log(cumulative distance)",
        ylabel="log(disengagements / mile)")
    points_x, points_y = [], []
    for name in _analysis_names(db):
        for point in monthly_series(db, name):
            if point.miles > 0 and point.dpm > 0:
                points_x.append(point.cumulative_miles)
                points_y.append(point.dpm)
    correlation = pooled_dpm_correlation(db, _analysis_names(db))
    figure.series.append(Series(
        name="pooled", x=points_x, y=points_y,
        annotation=(f"pearson r={correlation.r:.3f} "
                    f"p={correlation.p_value:.2e} n={correlation.n}")))
    figure.annotations.append(
        f"pearsonr = {correlation.r:.2f}; p = {correlation.p_value:.1e}")
    return figure


def figure9(db: FailureDatabase) -> FigureData:
    """Fig. 9: DPM vs cumulative miles per manufacturer with fits."""
    figure = FigureData(
        figure_id="Figure 9",
        title="Evolution of DPM with cumulative autonomous miles",
        xlabel="cumulative distance (miles)",
        ylabel="disengagements / mile")
    assessments = all_assessments(db, _analysis_names(db))
    for name in _analysis_names(db):
        assessment = assessments.get(name)
        if assessment is None:
            continue
        points = [(p.cumulative_miles, p.dpm)
                  for p in assessment.series if p.dpm > 0]
        if not points:
            continue
        annotation = ""
        if assessment.dpm_fit is not None:
            annotation = (f"loglog slope={assessment.dpm_fit.slope:.3f} "
                          f"r2={assessment.dpm_fit.r_squared:.3f}")
        figure.series.append(Series(
            name=name,
            x=[p[0] for p in points],
            y=[p[1] for p in points],
            annotation=annotation))
    return figure


def figure10(db: FailureDatabase) -> FigureData:
    """Fig. 10: driver reaction-time distributions per manufacturer."""
    figure = FigureData(
        figure_id="Figure 10",
        title="Driver reaction times at disengagement",
        xlabel="manufacturer", ylabel="reaction time (s)")
    summaries = alertness_summary(db)
    for name in ("Nissan", "Tesla", "Delphi", "Mercedes-Benz",
                 "Volkswagen", "Waymo"):
        summary = summaries.get(name)
        if summary is None:
            continue
        figure.boxes.append(BoxSeries(label=name, box=summary.box))
        if summary.outliers:
            figure.notes.append(
                f"{name}: {summary.outliers} outlier(s) above "
                f"{OUTLIER_THRESHOLD_S:g}s (kept in box, excluded "
                "from fits)")
    figure.annotations.append(
        f"overall mean reaction time = "
        f"{overall_mean_reaction_time(db):.2f} s")
    return figure


def figure11(db: FailureDatabase) -> FigureData:
    """Fig. 11: exponentiated-Weibull fits of reaction times
    (Mercedes-Benz and Waymo panels)."""
    figure = FigureData(
        figure_id="Figure 11",
        title="Reaction-time distributions with Weibull fits",
        xlabel="reaction time (s)", ylabel="PDF")
    for name in ("Mercedes-Benz", "Waymo"):
        times = [t for t in db.reaction_times(name)
                 if t <= OUTLIER_THRESHOLD_S]
        if len(times) < 8:
            continue
        fit = fit_reaction_times(db, name)
        centers, densities = histogram_density(times, bins=12)
        figure.series.append(Series(
            name=f"{name} data", x=list(centers), y=list(densities)))
        figure.series.append(Series(
            name=f"{name} fit",
            x=list(centers),
            y=[float(v) for v in fit.pdf(centers)],
            annotation=(f"exponweib a={fit.a:.2f} c={fit.c:.2f} "
                        f"scale={fit.scale:.2f} ks={fit.ks_statistic:.3f}")))
    return figure


def figure12(db: FailureDatabase) -> FigureData:
    """Fig. 12: collision-speed distributions with exponential fits."""
    figure = FigureData(
        figure_id="Figure 12",
        title="Vehicle speeds in reported accidents",
        xlabel="speed (mph)", ylabel="PDF")
    try:
        distributions = collision_speed_distributions(db)
    except InsufficientDataError:
        figure.notes.append("no accident speed data available")
        return figure
    panels = (
        ("AV speed", distributions.av_speeds, distributions.av_fit),
        ("MV speed", distributions.other_speeds, distributions.other_fit),
        ("relative speed", distributions.relative_speeds,
         distributions.relative_fit),
    )
    for label, values, fit in panels:
        centers, densities = histogram_density(values, bins=10)
        figure.series.append(Series(
            name=f"{label} data", x=list(centers), y=list(densities)))
        figure.series.append(Series(
            name=f"{label} fit", x=list(centers),
            y=[float(v) for v in fit.pdf(centers)],
            annotation=f"exponential scale={fit.scale:.2f} mph "
                       f"ks={fit.ks_statistic:.3f}"))
    below10 = distributions.fraction_relative_below(10.0)
    figure.annotations.append(
        f"fraction of accidents with relative speed < 10 mph: "
        f"{below10:.2f}")
    return figure
