"""Experiment registry: one entry per table and figure of the paper."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..pipeline.store import FailureDatabase
from . import extras, figures_paper, tables_paper


@dataclass(frozen=True)
class Experiment:
    """One reproducible exhibit of the paper."""

    experiment_id: str
    kind: str  # "table" or "figure"
    description: str
    generator: Callable[[FailureDatabase], object]

    def run(self, db: FailureDatabase):
        """Generate the exhibit from a failure database."""
        return self.generator(db)


EXPERIMENTS: dict[str, Experiment] = {
    e.experiment_id: e for e in [
        Experiment("table1", "table",
                   "Fleet size, miles, and incidents per manufacturer",
                   tables_paper.table1),
        Experiment("table2", "table",
                   "Sample disengagement reports with tags",
                   tables_paper.table2),
        Experiment("table3", "table",
                   "Fault tag and category definitions",
                   tables_paper.table3),
        Experiment("table4", "table",
                   "Disengagements by root failure category",
                   tables_paper.table4),
        Experiment("table5", "table",
                   "Disengagements by modality",
                   tables_paper.table5),
        Experiment("table6", "table",
                   "Accidents and DPA per manufacturer",
                   tables_paper.table6),
        Experiment("table7", "table",
                   "AV reliability vs human drivers",
                   tables_paper.table7),
        Experiment("table8", "table",
                   "AV reliability vs airplanes and surgical robots",
                   tables_paper.table8),
        Experiment("figure2", "figure",
                   "Accident scenario event chains (case studies)",
                   figures_paper.figure2),
        Experiment("figure3", "figure",
                   "Hierarchical control structure (STPA)",
                   figures_paper.figure3),
        Experiment("figure4", "figure",
                   "DPM per car across manufacturers (boxes)",
                   figures_paper.figure4),
        Experiment("figure5", "figure",
                   "Cumulative disengagements vs cumulative miles",
                   figures_paper.figure5),
        Experiment("figure6", "figure",
                   "Fault-tag fractions per manufacturer",
                   figures_paper.figure6),
        Experiment("figure7", "figure",
                   "Yearly DPM distributions",
                   figures_paper.figure7),
        Experiment("figure8", "figure",
                   "Pooled log-log DPM vs miles correlation",
                   figures_paper.figure8),
        Experiment("figure9", "figure",
                   "DPM vs cumulative miles per manufacturer",
                   figures_paper.figure9),
        Experiment("figure10", "figure",
                   "Reaction-time distributions",
                   figures_paper.figure10),
        Experiment("figure11", "figure",
                   "Exponentiated-Weibull reaction-time fits",
                   figures_paper.figure11),
        Experiment("figure12", "figure",
                   "Collision-speed distributions with fits",
                   figures_paper.figure12),
        # Extension exhibits (beyond the paper).
        Experiment("ext-census", "table",
                   "Reporting census per manufacturer",
                   extras.census_table),
        Experiment("ext-conditions", "table",
                   "Disengagements by road/weather/hour",
                   extras.conditions_table),
        Experiment("ext-injection", "table",
                   "Fault injection vs observed overlay",
                   extras.fault_injection_table),
        Experiment("ext-simulator", "table",
                   "Trip-simulator validation",
                   extras.simulator_table),
        Experiment("ext-yoy", "table",
                   "Year-over-year change per manufacturer",
                   extras.year_over_year_table),
    ]
}


def run_experiment(experiment_id: str, db: FailureDatabase):
    """Run one experiment by id."""
    return EXPERIMENTS[experiment_id].run(db)
