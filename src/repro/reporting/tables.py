"""Plain-text table rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


def _format_cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        if abs(value) < 0.01:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


@dataclass
class Table:
    """A titled table with aligned plain-text rendering."""

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns")
        self.rows.append(list(values))

    def column(self, name: str) -> list[Any]:
        """All values of one column."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def row_for(self, key: Any) -> list[Any] | None:
        """The first row whose first cell equals ``key``."""
        for row in self.rows:
            if row[0] == key:
                return row
        return None

    def render(self) -> str:
        """Aligned plain-text rendering."""
        cells = [[_format_cell(v) for v in row] for row in self.rows]
        widths = [len(c) for c in self.columns]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(
            name.ljust(widths[i]) for i, name in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append("  ".join(
                cell.ljust(widths[i]) for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - delegation
        return self.render()
