"""Generators for Tables I-VIII, computed from the failure database."""

from __future__ import annotations

from ..analysis.apm import accident_summary, apm_summary
from ..analysis.categories import category_percentages, modality_percentages
from ..analysis.missions import mission_comparison
from ..calibration.baselines import (
    AIRLINE_ACCIDENTS_PER_MISSION,
    HUMAN_ACCIDENTS_PER_MILE,
    SURGICAL_ROBOT_ACCIDENTS_PER_MISSION,
)
from ..calibration.fault_model import TABLE4_MANUFACTURERS
from ..calibration.manufacturers import MANUFACTURERS, PERIODS, ReportPeriod
from ..calibration.modality import TABLE5_MANUFACTURERS
from ..nlp.dictionary import FailureDictionary
from ..nlp.tagger import VotingTagger
from ..pipeline.store import FailureDatabase
from ..taxonomy import FaultTag, TAG_DEFINITIONS, category_of
from ..units import months_between
from .tables import Table

#: The analysis set, in the paper's Table VII order.
ANALYSIS_ORDER = ("Mercedes-Benz", "Volkswagen", "Waymo", "Delphi",
                  "Nissan", "Bosch", "GMCruise", "Tesla")

#: Table I's manufacturer order.
TABLE1_ORDER = ("Mercedes-Benz", "Bosch", "Delphi", "GMCruise", "Nissan",
                "Tesla", "Volkswagen", "Waymo", "Uber ATC", "Honda",
                "Ford", "BMW")


def _period_months(period: ReportPeriod) -> set[str]:
    return set(months_between(*PERIODS[period]))


def table1(db: FailureDatabase) -> Table:
    """Table I: fleet size, miles, disengagements, accidents per
    manufacturer and reporting period."""
    table = Table(
        title=("Table I: fleet size, autonomous miles, and failure "
               "incidents across manufacturers"),
        columns=["Manufacturer",
                 "Cars 15-16", "Miles 15-16", "Dis 15-16", "Acc 15-16",
                 "Cars 16-17", "Miles 16-17", "Dis 16-17", "Acc 16-17"])
    totals = {period: [0, 0.0, 0, 0] for period in ReportPeriod}
    for name in TABLE1_ORDER:
        if name not in db.manufacturers() and name in MANUFACTURERS:
            continue
        row: list = [name]
        for period in ReportPeriod:
            months = _period_months(period)
            cars = {cell.vehicle_id for cell in db.mileage
                    if cell.manufacturer == name
                    and cell.month in months and cell.vehicle_id}
            miles = sum(cell.miles for cell in db.mileage
                        if cell.manufacturer == name
                        and cell.month in months)
            events = sum(1 for r in db.disengagements
                         if r.manufacturer == name and r.month in months)
            accidents = sum(
                1 for a in db.accidents
                if a.manufacturer == name and a.month in months)
            if miles == 0 and events == 0 and accidents == 0:
                row.extend([None, None, None, None])
            else:
                row.extend([len(cars) or None, miles, events,
                            accidents or None])
                totals[period][0] += len(cars)
                totals[period][1] += miles
                totals[period][2] += events
                totals[period][3] += accidents
        table.add_row(*row)
    total_row: list = ["Total"]
    for period in ReportPeriod:
        total_row.extend(totals[period])
    table.add_row(*total_row)
    table.notes.append("dashes indicate data absent from the reports")
    return table


def table2(db: FailureDatabase) -> Table:
    """Table II: sample raw disengagement logs with the NLP engine's
    category and tag assignments."""
    table = Table(
        title="Table II: sample disengagement reports",
        columns=["Manufacturer", "Raw log", "Category", "Tag"])
    wanted = [
        ("Nissan", FaultTag.SOFTWARE),
        ("Nissan", FaultTag.RECOGNITION_SYSTEM),
        ("Waymo", FaultTag.ENVIRONMENT),
        ("Volkswagen", FaultTag.HANG_CRASH),
    ]
    for manufacturer, tag in wanted:
        sample = next(
            (r for r in db.disengagements
             if r.manufacturer == manufacturer and r.tag is tag), None)
        if sample is None:
            continue
        text = sample.description
        if len(text) > 70:
            text = text[:67] + "..."
        table.add_row(manufacturer, text,
                      str(category_of(tag)), tag.display_name)
    return table


def table3(db: FailureDatabase | None = None) -> Table:
    """Table III: fault tags, categories, and definitions.

    Static ontology; ``db`` is accepted for interface uniformity.
    """
    del db
    table = Table(
        title="Table III: fault tags and categories",
        columns=["Tag", "Category", "Definition"])
    for tag in FaultTag:
        table.add_row(tag.display_name, str(category_of(tag)),
                      TAG_DEFINITIONS[tag])
    return table


def table4(db: FailureDatabase) -> Table:
    """Table IV: disengagement percentages by root failure category."""
    table = Table(
        title=("Table IV: disengagements by root failure category "
               "(percent)"),
        columns=["Manufacturer", "ML Planner/Controller",
                 "ML Perception/Recognition", "System", "Unknown-C"])
    rows = category_percentages(db, list(TABLE4_MANUFACTURERS))
    for name in TABLE4_MANUFACTURERS:
        row = rows.get(name)
        if row is None:
            continue
        table.add_row(name, row["ML-Planner/Controller"],
                      row["ML-Perception/Recognition"], row["System"],
                      row["Unknown-C"])
    return table


def table5(db: FailureDatabase) -> Table:
    """Table V: disengagement modality percentages."""
    table = Table(
        title="Table V: disengagements by modality (percent)",
        columns=["Manufacturer", "Automatic", "Manual", "Planned"])
    rows = modality_percentages(db, list(TABLE5_MANUFACTURERS))
    for name in TABLE5_MANUFACTURERS:
        row = rows.get(name)
        if row is None:
            continue
        table.add_row(name, row["Automatic"], row["Manual"],
                      row["Planned"])
    return table


def table6(db: FailureDatabase) -> Table:
    """Table VI: accidents, share of total, and DPA."""
    table = Table(
        title="Table VI: accidents reported by manufacturers",
        columns=["Manufacturer", "Accidents", "Fraction of Total (%)",
                 "DPA"])
    for name, summary in accident_summary(db).items():
        table.add_row(name, summary.accidents,
                      summary.fraction_of_total, summary.dpa)
    table.notes.append("DPA = disengagements per accident")
    return table


def table7(db: FailureDatabase) -> Table:
    """Table VII: reliability of AVs compared to human drivers."""
    table = Table(
        title="Table VII: reliability of AVs vs. human drivers",
        columns=["Manufacturer", "Median DPM (1/mile)",
                 "Median APM (1/mile)", "Rel. to HAPM"])
    rows = apm_summary(db, list(ANALYSIS_ORDER))
    for name in ANALYSIS_ORDER:
        summary = rows.get(name)
        if summary is None:
            continue
        relative = (f"{summary.relative_to_human:.1f}x"
                    if summary.relative_to_human else None)
        table.add_row(name, summary.median_dpm, summary.apm, relative)
    table.notes.append(
        f"human APM = {HUMAN_ACCIDENTS_PER_MILE:g}/mile (NHTSA/FHWA)")
    return table


def table8(db: FailureDatabase) -> Table:
    """Table VIII: reliability vs. other safety-critical systems."""
    table = Table(
        title=("Table VIII: AVs vs. airplanes and surgical robots "
               "(per mission)"),
        columns=["Manufacturer", "APMi", "APMi/Airline APM",
                 "APMi/SR APM"])
    rows = mission_comparison(db, list(ANALYSIS_ORDER))
    for name in ("Waymo", "Delphi", "Nissan", "GMCruise"):
        comparison = rows.get(name)
        if comparison is None:
            continue
        table.add_row(name, comparison.apmi, comparison.vs_airline,
                      comparison.vs_surgical_robot)
    table.notes.append(
        f"airline APM = {AIRLINE_ACCIDENTS_PER_MISSION:g}, surgical "
        f"robot APM = {SURGICAL_ROBOT_ACCIDENTS_PER_MISSION:g}")
    return table


def rebuild_tagger(db: FailureDatabase) -> VotingTagger:
    """Convenience: a tagger built from the database's narratives."""
    return VotingTagger(FailureDictionary.build(
        [r.description for r in db.disengagements]))
