"""Plain-text figure rendering: series and box-plot summaries.

The harness does not draw pixels; a "figure" here is the exact data a
plot would show — series of (x, y) points, box summaries, fit
parameters — rendered as aligned text so the bench output can be
compared line-by-line against the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..analysis.stats import BoxplotStats


@dataclass
class Series:
    """One plotted series of a figure."""

    name: str
    x: list[float]
    y: list[float]
    #: Optional fit annotation ("slope=-0.52 r2=0.91").
    annotation: str = ""

    def head(self, k: int = 5) -> list[tuple[float, float]]:
        """First ``k`` points (for compact rendering)."""
        return list(zip(self.x[:k], self.y[:k]))


@dataclass
class BoxSeries:
    """One labeled box of a box-plot figure."""

    label: str
    box: BoxplotStats


@dataclass
class FigureData:
    """All data behind one figure of the paper."""

    figure_id: str
    title: str
    xlabel: str = ""
    ylabel: str = ""
    series: list[Series] = field(default_factory=list)
    boxes: list[BoxSeries] = field(default_factory=list)
    annotations: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def series_by_name(self, name: str) -> Series:
        """Look up a series by name."""
        for series in self.series:
            if series.name == name:
                return series
        raise KeyError(f"figure {self.figure_id} has no series {name!r}")

    def box_by_label(self, label: str) -> BoxSeries:
        """Look up a box by label."""
        for box in self.boxes:
            if box.label == label:
                return box
        raise KeyError(f"figure {self.figure_id} has no box {label!r}")

    def render(self, max_points: int = 6) -> str:
        """Aligned plain-text rendering of the figure data."""
        lines = [f"{self.figure_id}: {self.title}",
                 "=" * (len(self.figure_id) + len(self.title) + 2)]
        if self.xlabel or self.ylabel:
            lines.append(f"x: {self.xlabel} | y: {self.ylabel}")
        for annotation in self.annotations:
            lines.append(f"  {annotation}")
        for box in self.boxes:
            b = box.box
            lines.append(
                f"  [box] {box.label:18s} n={b.n:<5d} "
                f"min={_fmt(b.minimum)} q1={_fmt(b.q1)} "
                f"med={_fmt(b.median)} q3={_fmt(b.q3)} "
                f"max={_fmt(b.maximum)}")
        for series in self.series:
            suffix = f"  {series.annotation}" if series.annotation else ""
            lines.append(
                f"  [series] {series.name:18s} n={len(series.x)}{suffix}")
            points = ", ".join(
                f"({_fmt(x)}, {_fmt(y)})"
                for x, y in series.head(max_points))
            if points:
                lines.append(f"      {points}"
                             + (" ..." if len(series.x) > max_points
                                else ""))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - delegation
        return self.render()


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.4g}"
        if abs(value) < 0.01:
            return f"{value:.2e}"
        return f"{value:.3g}"
    return str(value)
