"""Text-mode chart rendering for figure data.

The bench output is data-first, but a human scanning a terminal wants
the *shape*.  These renderers draw horizontal bar charts, box-plot
strips, and log-log scatter plots in plain text, entirely
deterministically.
"""

from __future__ import annotations

import math

from ..analysis.stats import BoxplotStats
from ..errors import AnalysisError

_BAR = "█"
_DOT = "•"


def bar_chart(items: dict[str, float], width: int = 40,
              value_format: str = "{:.2f}") -> str:
    """Horizontal bar chart of label -> value."""
    if not items:
        raise AnalysisError("no items to chart")
    if width < 4:
        raise AnalysisError("chart width must be at least 4")
    label_width = max(len(label) for label in items)
    peak = max(items.values())
    lines = []
    for label, value in items.items():
        if peak > 0:
            filled = max(0, round(width * value / peak))
        else:
            filled = 0
        bar = _BAR * filled
        rendered_value = value_format.format(value)
        lines.append(f"{label.ljust(label_width)} |{bar:<{width}}| "
                     f"{rendered_value}")
    return "\n".join(lines)


def box_strip(label: str, box: BoxplotStats, low: float, high: float,
              width: int = 50, log: bool = False) -> str:
    """One box-plot row rendered as ``---[==|==]---`` over an axis.

    ``low``/``high`` are the axis bounds shared across rows; ``log``
    plots on a log10 axis (all values must then be positive).
    """
    if high <= low:
        raise AnalysisError(f"bad axis bounds [{low}, {high}]")

    def position(value: float) -> int:
        if log:
            if low <= 0:
                raise AnalysisError("log axis requires positive bounds")
            # Zero-rate units (a car with no disengagements) clamp to
            # the axis floor rather than breaking the panel.
            value = max(value, low)
            fraction = ((math.log10(value) - math.log10(low))
                        / (math.log10(high) - math.log10(low)))
        else:
            fraction = (value - low) / (high - low)
        return int(round(min(max(fraction, 0.0), 1.0) * (width - 1)))

    cells = [" "] * width
    lo, q1 = position(box.minimum), position(box.q1)
    median, q3 = position(box.median), position(box.q3)
    hi = position(box.maximum)
    for i in range(lo, q1):
        cells[i] = "-"
    for i in range(q1, q3 + 1):
        cells[i] = "="
    for i in range(q3 + 1, hi + 1):
        cells[i] = "-"
    cells[q1] = "["
    cells[min(q3, width - 1)] = "]"
    cells[median] = "|"
    return f"{label:18s} {''.join(cells)}"


def box_panel(boxes: dict[str, BoxplotStats], width: int = 50,
              log: bool = False) -> str:
    """A panel of aligned box strips sharing one axis."""
    if not boxes:
        raise AnalysisError("no boxes to render")
    values: list[float] = []
    for box in boxes.values():
        values.extend([box.minimum, box.maximum])
    positives = [v for v in values if v > 0]
    if log and not positives:
        raise AnalysisError("log axis requires positive values")
    low = min(positives) if log else min(values)
    high = max(values)
    if high <= low:
        high = low + 1.0
    lines = [box_strip(label, box, low, high, width, log)
             for label, box in boxes.items()]
    axis = (f"{'':18s} {_axis_label(low)}"
            f"{' ' * (width - len(_axis_label(low)) - len(_axis_label(high)))}"
            f"{_axis_label(high)}")
    lines.append(axis)
    return "\n".join(lines)


def _axis_label(value: float) -> str:
    if value != 0 and (abs(value) < 0.01 or abs(value) >= 10000):
        return f"{value:.0e}"
    return f"{value:g}"


def scatter(x: list[float], y: list[float], width: int = 60,
            height: int = 18, loglog: bool = False) -> str:
    """Text scatter plot of ``(x, y)`` points."""
    if len(x) != len(y):
        raise AnalysisError("x and y lengths differ")
    points = [(a, b) for a, b in zip(x, y)
              if not loglog or (a > 0 and b > 0)]
    if len(points) < 2:
        raise AnalysisError("need at least 2 plottable points")
    if loglog:
        points = [(math.log10(a), math.log10(b)) for a, b in points]
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for a, b in points:
        col = int((a - x_low) / x_span * (width - 1))
        row = int((b - y_low) / y_span * (height - 1))
        grid[height - 1 - row][col] = _DOT
    lines = ["+" + "-" * width + "+"]
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    prefix = "log10 " if loglog else ""
    lines.append(f"{prefix}x: [{x_low:.2f}, {x_high:.2f}]  "
                 f"{prefix}y: [{y_low:.2f}, {y_high:.2f}]  "
                 f"n={len(points)}")
    return "\n".join(lines)


def sparkline(values: list[float]) -> str:
    """One-line trend sparkline."""
    if not values:
        raise AnalysisError("no values for sparkline")
    blocks = "▁▂▃▄▅▆▇█"
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    return "".join(
        blocks[int((v - low) / span * (len(blocks) - 1))]
        for v in values)
