"""Full study report: every exhibit plus headline claims, as Markdown.

``render_study_report(db)`` produces the whole Section V narrative
from a failure database — the artifact a downstream user would attach
to their own DMV filing analysis.
"""

from __future__ import annotations

from ..analysis.alertness import (
    alertness_summary,
    overall_mean_reaction_time,
)
from ..analysis.apm import (
    collision_speed_distributions,
    disengagements_per_accident_overall,
    miles_per_disengagement,
)
from ..analysis.categories import automatic_share, overall_category_shares
from ..analysis.dpm import manufacturer_dpm_summary
from ..analysis.maturity import all_assessments, pooled_dpm_correlation
from ..analysis.missions import mission_comparison
from ..pipeline.resilience import Quarantine, RunHealth
from ..pipeline.store import FailureDatabase
from . import figures_paper, tables_paper
from .ascii_charts import bar_chart, box_panel, scatter
from .tables_paper import ANALYSIS_ORDER


def render_study_report(db: FailureDatabase,
                        include_charts: bool = True) -> str:
    """Render the full study as Markdown."""
    names = [n for n in ANALYSIS_ORDER if n in db.manufacturers()]
    out: list[str] = []
    w = out.append

    w("# AV Failure Study Report")
    w("")
    w(f"Database: {len(db.disengagements):,} disengagements, "
      f"{len(db.accidents)} accidents, "
      f"{db.total_miles:,.0f} autonomous miles across "
      f"{len(db.manufacturers())} manufacturers.")
    w("")

    w("## Headlines")
    w("")
    shares = overall_category_shares(db)
    if shares:
        w(f"- **{shares['ml_design']:.0%} of disengagements** trace to "
          "the machine-learning system "
          f"({shares['perception']:.0%} perception, "
          f"{shares['planner']:.0%} planning/control); "
          f"{shares['system']:.0%} to the computing system.")
    try:
        correlation = pooled_dpm_correlation(db, names)
        w(f"- DPM falls with cumulative miles: pooled Pearson "
          f"r = {correlation.r:.2f} (p = {correlation.p_value:.1e}).")
    except Exception:
        pass
    try:
        w(f"- Mean driver reaction time "
          f"{overall_mean_reaction_time(db):.2f} s — drivers must stay "
          "as alert as in conventional vehicles.")
    except Exception:
        pass
    try:
        w(f"- One accident per "
          f"{disengagements_per_accident_overall(db):.0f} "
          "disengagements; "
          f"{miles_per_disengagement(db):.0f} miles per disengagement "
          "on average.")
    except Exception:
        pass
    w(f"- {automatic_share(db):.0%} of disengagements (average across "
      "manufacturers) are machine-initiated.")
    w("")

    w("## Disengagements per mile")
    w("")
    summaries = manufacturer_dpm_summary(db, names)
    if include_charts and summaries:
        w("```")
        w(box_panel({name: s.box for name, s in summaries.items()},
                    log=True))
        w("```")
        w("")
    w("| manufacturer | unit | median DPM | aggregate DPM |")
    w("|---|---|---|---|")
    for name, summary in summaries.items():
        w(f"| {name} | {summary.unit} | {summary.median_dpm:.3e} | "
          f"{summary.aggregate_dpm:.3e} |")
    w("")

    w("## Burn-in (maturity)")
    w("")
    w("| manufacturer | DPM trend slope | improving | mature |")
    w("|---|---|---|---|")
    for name, assessment in all_assessments(db, names).items():
        slope = (f"{assessment.dpm_fit.slope:+.3f}"
                 if assessment.dpm_fit else "-")
        w(f"| {name} | {slope} | {assessment.improving} | "
          f"{assessment.mature} |")
    w("")
    if include_charts:
        points_x, points_y = [], []
        for name in names:
            from ..analysis.dpm import monthly_series
            for point in monthly_series(db, name):
                if point.miles > 0 and point.dpm > 0:
                    points_x.append(point.cumulative_miles)
                    points_y.append(point.dpm)
        if len(points_x) >= 2:
            w("log(DPM) vs log(cumulative miles):")
            w("")
            w("```")
            w(scatter(points_x, points_y, loglog=True))
            w("```")
            w("")

    w("## Accidents")
    w("")
    w("```")
    w(tables_paper.table6(db).render())
    w("```")
    w("")
    try:
        speeds = collision_speed_distributions(db)
        w(f"{speeds.fraction_relative_below(10.0):.0%} of accidents "
          "occurred below 10 mph relative speed (exponential scales: "
          f"AV {speeds.av_fit.scale:.1f} mph, other vehicle "
          f"{speeds.other_fit.scale:.1f} mph).")
        w("")
    except Exception:
        pass

    missions = mission_comparison(db, names)
    if missions:
        w("## Per-mission comparison")
        w("")
        if include_charts:
            w("```")
            w(bar_chart({name: m.vs_airline
                         for name, m in missions.items()},
                        value_format="{:.1f}x airline"))
            w("```")
            w("")

    alertness = alertness_summary(db)
    if alertness:
        w("## Driver alertness")
        w("")
        w("| manufacturer | median RT (s) | trimmed mean (s) | "
          "outliers |")
        w("|---|---|---|---|")
        for name, summary in alertness.items():
            w(f"| {name} | {summary.box.median:.2f} | "
              f"{summary.trimmed_mean:.2f} | {summary.outliers} |")
        w("")

    w("## Exhibits")
    w("")
    for experiment_id, generator in (
            ("Table VII", tables_paper.table7),
            ("Figure 8", figures_paper.figure8)):
        try:
            w("```")
            w(generator(db).render())
            w("```")
            w("")
        except Exception:
            continue
    return "\n".join(out)


def render_run_health(health: RunHealth,
                      quarantine: Quarantine | None = None,
                      parallel=None) -> str:
    """Render the resilience layer's view of one run as text.

    Used by the CLI's ``health`` section after ``run``/``process``; a
    clean run renders a single reassuring line.  ``parallel`` (a
    :class:`~repro.pipeline.parallel.ParallelStats`) adds worker-pool
    lines only when the run actually fanned out, so serial output is
    unchanged.
    """
    out: list[str] = []
    w = out.append
    if health.clean and not (quarantine and len(quarantine)):
        if health.total_retries:
            w(f"health:         clean "
              f"({health.total_retries} transient fault(s) retried "
              "successfully)")
        else:
            w("health:         clean (no errors, no degradations)")
        _render_checkpoint_health(health.checkpoint, w)
        _render_parallel_stats(parallel, w)
        return "\n".join(out)
    w(f"health:         {health.total_errors} error(s), "
      f"{health.total_retries} retried, "
      f"{health.total_degradations} degraded, "
      f"{health.total_quarantined} quarantined")
    for name, stage in sorted(health.stages.items()):
        if stage.errors == 0 and stage.retries == 0:
            continue
        w(f"  {name:12s} {stage.errors}/{stage.attempts} failed "
          f"({stage.error_rate:.1%}), {stage.retries} retried, "
          f"{stage.degradations} degraded, "
          f"{stage.quarantined} quarantined")
    if quarantine and len(quarantine):
        worst = quarantine.entries[:3]
        w(f"  quarantine:  {len(quarantine)} unit(s): "
          + ", ".join(f"{e.unit_id} [{e.error_type}]" for e in worst)
          + (" ..." if len(quarantine) > 3 else ""))
    for event in health.degradation_events[:5]:
        w(f"  degraded:    {event}")
    _render_checkpoint_health(health.checkpoint, w)
    _render_parallel_stats(parallel, w)
    return "\n".join(out)


def render_query_stats(stats: dict) -> str:
    """Render a query engine's statistics as text.

    ``stats`` is :meth:`repro.query.engine.QueryEngine.stats` output;
    the CLI prints this when ``repro serve`` shuts down.
    """
    index = stats.get("index", {})
    cache = stats.get("cache", {})
    out: list[str] = []
    w = out.append
    w(f"query engine:   db {stats.get('fingerprint', '')[:12]} — "
      f"{index.get('disengagements', 0):,} disengagements, "
      f"{index.get('accidents', 0):,} accidents, "
      f"{index.get('mileage_cells', 0):,} mileage cells across "
      f"{index.get('manufacturers', 0)} manufacturers")
    lookups = cache.get("hits", 0) + cache.get("misses", 0)
    w(f"  cache:       {lookups} lookup(s), "
      f"{cache.get('hits', 0)} hit(s) "
      f"({cache.get('hit_rate', 0.0):.1%}), "
      f"{cache.get('evictions', 0)} evicted, "
      f"{cache.get('size', 0)}/{cache.get('maxsize', 0)} resident")
    return "\n".join(out)


def _render_checkpoint_health(checkpoint, w) -> None:
    """Append the durability layer's view (silent when disabled)."""
    if not checkpoint.enabled:
        return
    line = (f"checkpoint:     {checkpoint.restored_units} unit(s) "
            f"restored, {checkpoint.recomputed_units} recomputed, "
            f"{checkpoint.artifacts_restored} artifact(s) restored")
    if checkpoint.corrupt_entries:
        line += (f", {checkpoint.corrupt_entries} corrupt "
                 "entr(y/ies) discarded")
    w(line)
    if checkpoint.stale:
        w(f"  stale:       checkpoint discarded "
          f"({checkpoint.stale_reason})")
    for note in checkpoint.notes[:5]:
        w(f"  durability:  {note}")


def render_trace_summary(rows: list[dict]) -> str:
    """Render a self-time table from aggregated trace rows.

    ``rows`` is :func:`repro.obs.self_times` output (already sorted
    hottest-first); this is the body of the ``repro trace`` verb.
    """
    out: list[str] = []
    w = out.append
    w(f"{'name':<24s} {'kind':<6s} {'count':>6s} "
      f"{'total_s':>9s} {'self_s':>9s} {'errors':>6s}")
    for row in rows:
        w(f"{row['name']:<24s} {row['kind']:<6s} "
          f"{row['count']:>6d} {row['total_s']:>9.3f} "
          f"{row['self_s']:>9.3f} {row['errors']:>6d}")
    total_self = sum(row["self_s"] for row in rows)
    w(f"{'total':<24s} {'':<6s} {'':>6s} {'':>9s} "
      f"{total_self:>9.3f} {'':>6s}")
    return "\n".join(out)


def render_metrics_summary(metrics: dict) -> str:
    """Render a metrics snapshot as a compact text digest.

    ``metrics`` is :meth:`repro.obs.MetricsRegistry.to_dict` output
    (as stored on ``PipelineDiagnostics.metrics``); counters and
    gauges print their per-label values, histograms their count and
    mean.
    """
    out: list[str] = []
    w = out.append
    for name, data in sorted(metrics.items()):
        for series in data.get("series", []):
            labels = series.get("labels") or {}
            suffix = ("{" + ",".join(f"{k}={v}"
                                     for k, v in sorted(labels.items()))
                      + "}") if labels else ""
            if data.get("type") == "histogram":
                count = series.get("count", 0)
                mean = (series.get("sum", 0.0) / count) if count else 0.0
                w(f"  {name}{suffix}: {count} obs, "
                  f"mean {mean * 1000.0:.3f}ms")
            else:
                value = series.get("value", 0.0)
                rendered = (f"{int(value)}" if float(value).is_integer()
                            else f"{value:.3f}")
                w(f"  {name}{suffix}: {rendered}")
    if not out:
        return "metrics:        (no series recorded)"
    return "metrics:\n" + "\n".join(out)


def _render_parallel_stats(parallel, w) -> None:
    """Append the worker-pool view (silent for serial runs)."""
    if parallel is None or not parallel.enabled:
        return
    line = (f"workers:        {parallel.workers} ({parallel.mode} "
            f"pool), {parallel.parallel_units} unit(s) fanned out")
    speedup = parallel.speedup_estimate
    if speedup is not None:
        line += (f", ~{speedup:.1f}x estimated speedup over serial "
                 f"({parallel.unit_compute_s:.2f}s compute / "
                 f"{parallel.parallel_wall_s:.2f}s wall)")
    w(line)
    if parallel.batch_tasks:
        sizes = ", ".join(
            f"{stage}={size}" for stage, size
            in sorted(parallel.batch_size.items()))
        w(f"  dispatch:      {parallel.batch_tasks} chunk task(s), "
          f"batch size {sizes}")
    for stage, seconds in parallel.stage_wall_s.items():
        w(f"  {stage:14s} {seconds:.3f}s")
