"""Extension exhibits beyond the paper's tables and figures.

These cover the analyses this repository adds on top of the paper:
the reporting census (data-heterogeneity), condition breakdowns, the
fault-injection campaign, and the trip-simulator validation.  They are
registered in the experiment registry under ``ext-*`` ids so the CLI's
``report all`` includes them.
"""

from __future__ import annotations

from ..analysis.conditions import (
    reporting_census,
    road_type_breakdown,
    time_of_day_breakdown,
    weather_breakdown,
)
from ..errors import InsufficientDataError
from ..pipeline.store import FailureDatabase
from ..stpa import overlay_failures
from ..stpa.fault_injection import FaultInjector
from .tables import Table

_CENSUS_FIELDS = ("event_date", "time_of_day", "vehicle_id",
                  "road_type", "weather", "reaction_time_s",
                  "modality")


def census_table(db: FailureDatabase) -> Table:
    """Per-manufacturer share of records reporting each field."""
    table = Table(
        title="Extension: reporting census (share of records with "
              "each field)",
        columns=["Manufacturer"] + [f.replace("_", " ")
                                    for f in _CENSUS_FIELDS])
    for name, fields in sorted(reporting_census(db).items()):
        table.add_row(name, *(round(fields[f], 2)
                              for f in _CENSUS_FIELDS))
    table.notes.append(
        "quantifies the data-heterogeneity threat of Section VI")
    return table


def conditions_table(db: FailureDatabase) -> Table:
    """Disengagement shares by road type, weather, and hour band."""
    table = Table(
        title="Extension: disengagements by condition",
        columns=["Condition", "Value", "Share"])
    try:
        for road, share in sorted(
                road_type_breakdown(db).shares.items(),
                key=lambda kv: -kv[1]):
            table.add_row("road type", road, round(share, 3))
    except InsufficientDataError:
        pass
    try:
        for weather, share in sorted(
                weather_breakdown(db).shares.items(),
                key=lambda kv: -kv[1]):
            table.add_row("weather", weather, round(share, 3))
    except InsufficientDataError:
        pass
    try:
        hours = time_of_day_breakdown(db)
        total = sum(hours.values())
        bands = {"00-05": range(0, 6), "06-11": range(6, 12),
                 "12-17": range(12, 18), "18-23": range(18, 24)}
        for band, hour_range in bands.items():
            share = sum(hours.get(h, 0) for h in hour_range) / total
            table.add_row("hour of day", band, round(share, 3))
    except InsufficientDataError:
        pass
    return table


def fault_injection_table(db: FailureDatabase,
                          injections: int = 300) -> Table:
    """Fault-injection hazard ranking next to the observed overlay."""
    campaign = FaultInjector().run_campaign(
        injections_per_component=injections, seed=2018)
    overlay = overlay_failures(db.disengagements)
    localized = max(overlay.total - overlay.unlocalized, 1)
    table = Table(
        title="Extension: fault injection vs observed failure overlay",
        columns=["Component", "Hazard rate", "Detection rate",
                 "Observed share"])
    for origin, rate in campaign.hazard_ranking():
        table.add_row(
            origin, round(rate, 3),
            round(campaign.detection_rate(origin), 3),
            round(overlay.by_component.get(origin, 0) / localized, 3))
    return table


def year_over_year_table(db: FailureDatabase) -> Table:
    """Per-manufacturer deltas between the two reporting periods."""
    from ..analysis.compare import diff_databases, split_by_period

    first, second = split_by_period(db)
    diffs = diff_databases(first, second)
    table = Table(
        title="Extension: year-over-year change "
              "(2015-2016 report -> 2016-2017 report)",
        columns=["Manufacturer", "Miles delta", "DPM before",
                 "DPM after", "DPM direction", "Improving"])
    for name, diff in sorted(diffs.items()):
        miles = diff.delta("miles")
        dpm = diff.delta("dpm")
        if miles.before is None and miles.after is None:
            continue
        table.add_row(
            name,
            round(miles.absolute, 1) if miles.absolute is not None
            else None,
            round(dpm.before, 5) if dpm.before is not None else None,
            round(dpm.after, 5) if dpm.after is not None else None,
            dpm.direction,
            diff.improving)
    return table


def simulator_table(db: FailureDatabase, trips: int = 20000) -> Table:
    """Simulator validation rows for manufacturers with reaction
    data and accidents."""
    from ..simulator import calibrate_from_database, simulate_fleet

    table = Table(
        title="Extension: trip-simulator validation",
        columns=["Manufacturer", "Field DPM", "Simulated DPM",
                 "Field DPA", "Simulated DPA"])
    for name in ("Delphi", "Nissan", "Waymo"):
        try:
            config = calibrate_from_database(db, name)
        except InsufficientDataError:
            continue
        fleet = simulate_fleet(config, trips=trips, seed=2018)
        records = db.disengagements_by_manufacturer().get(name, [])
        accidents = len(db.accidents_by_manufacturer().get(name, []))
        field_dpa = (len(records) / accidents) if accidents else None
        table.add_row(
            name,
            round(config.dpm, 6),
            round(fleet.dpm, 6),
            round(field_dpa, 1) if field_dpa else None,
            round(fleet.dpa, 1) if fleet.dpa else None)
    return table
