"""Reporting: regenerate every table and figure of the paper.

``tables_paper`` and ``figures_paper`` hold one generator per exhibit
(Tables I-VIII, Figs. 4-12); ``experiments`` is the registry the
benchmark harness iterates over.
"""

from .tables import Table
from .figures import BoxSeries, FigureData, Series
from . import tables_paper, figures_paper
from .experiments import EXPERIMENTS, Experiment, run_experiment

__all__ = [
    "Table",
    "BoxSeries",
    "FigureData",
    "Series",
    "tables_paper",
    "figures_paper",
    "EXPERIMENTS",
    "Experiment",
    "run_experiment",
]
