"""Canonical fault taxonomy from the paper (Table III and Fig. 6).

The taxonomy has two levels:

* **Fault tags** — the fine-grained labels assigned to each
  disengagement by the NLP engine (Table III plus the ``Incorrect
  Behavior Prediction`` tag that appears in Fig. 6, and the
  ``Unknown-T`` catch-all).
* **Failure categories** — the coarse STPA-derived grouping used for
  the headline statistics: ``ML/Design`` vs. ``System`` vs.
  ``Unknown-C``.  ML/Design is further split into *perception*
  (recognition-side) and *planner/controller* (decision-side) faults,
  which is the split Table IV reports.

The ``AV Controller`` tag is ambiguous in the paper: it maps to
``System`` when the controller does not respond to commands and to
``ML/Design`` when the controller makes wrong decisions.  We model the
two situations as distinct tags (``AV Controller (unresponsive)`` and
``AV Controller (decision)``) that render under the same display name.
"""

from __future__ import annotations

import enum


class FailureCategory(enum.Enum):
    """Coarse STPA-derived failure category (Table III/IV)."""

    ML_DESIGN = "ML/Design"
    SYSTEM = "System"
    UNKNOWN = "Unknown-C"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class MlSubcategory(enum.Enum):
    """The Table IV split of ML/Design faults."""

    PERCEPTION = "Perception/Recognition"
    PLANNER = "Planner/Controller"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class FaultTag(enum.Enum):
    """Fine-grained fault tag (Table III + Fig. 6)."""

    ENVIRONMENT = "Environment"
    COMPUTER_SYSTEM = "Computer System"
    RECOGNITION_SYSTEM = "Recognition System"
    PLANNER = "Planner"
    SENSOR = "Sensor"
    NETWORK = "Network"
    DESIGN_BUG = "Design Bug"
    SOFTWARE = "Software"
    AV_CONTROLLER_UNRESPONSIVE = "AV Controller (unresponsive)"
    AV_CONTROLLER_DECISION = "AV Controller (decision)"
    HANG_CRASH = "Hang/Crash"
    INCORRECT_BEHAVIOR_PREDICTION = "Incorrect Behavior Prediction"
    UNKNOWN = "Unknown-T"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def display_name(self) -> str:
        """Name used in figures; the two AV Controller tags collapse."""
        if self in (FaultTag.AV_CONTROLLER_UNRESPONSIVE,
                    FaultTag.AV_CONTROLLER_DECISION):
            return "AV Controller"
        return self.value


class Modality(enum.Enum):
    """How a disengagement was initiated (Table V)."""

    AUTOMATIC = "Automatic"
    MANUAL = "Manual"
    PLANNED = "Planned"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Tag -> coarse category (Table III).
TAG_CATEGORY: dict[FaultTag, FailureCategory] = {
    FaultTag.ENVIRONMENT: FailureCategory.ML_DESIGN,
    FaultTag.COMPUTER_SYSTEM: FailureCategory.SYSTEM,
    FaultTag.RECOGNITION_SYSTEM: FailureCategory.ML_DESIGN,
    FaultTag.PLANNER: FailureCategory.ML_DESIGN,
    FaultTag.SENSOR: FailureCategory.SYSTEM,
    FaultTag.NETWORK: FailureCategory.SYSTEM,
    FaultTag.DESIGN_BUG: FailureCategory.ML_DESIGN,
    FaultTag.SOFTWARE: FailureCategory.SYSTEM,
    FaultTag.AV_CONTROLLER_UNRESPONSIVE: FailureCategory.SYSTEM,
    FaultTag.AV_CONTROLLER_DECISION: FailureCategory.ML_DESIGN,
    FaultTag.HANG_CRASH: FailureCategory.SYSTEM,
    FaultTag.INCORRECT_BEHAVIOR_PREDICTION: FailureCategory.ML_DESIGN,
    FaultTag.UNKNOWN: FailureCategory.UNKNOWN,
}

#: ML/Design tag -> Table IV subcategory.  Environment faults (construction
#: zones, weather, reckless road users) count as perception per the paper's
#: footnote 5: "we consider external fault sources ... as perception-related
#: machine-learning related disengagements".
ML_SUBCATEGORY: dict[FaultTag, MlSubcategory] = {
    FaultTag.ENVIRONMENT: MlSubcategory.PERCEPTION,
    FaultTag.RECOGNITION_SYSTEM: MlSubcategory.PERCEPTION,
    FaultTag.PLANNER: MlSubcategory.PLANNER,
    FaultTag.DESIGN_BUG: MlSubcategory.PLANNER,
    FaultTag.AV_CONTROLLER_DECISION: MlSubcategory.PLANNER,
    FaultTag.INCORRECT_BEHAVIOR_PREDICTION: MlSubcategory.PLANNER,
}

#: Table III definition strings, keyed by tag, for documentation output.
TAG_DEFINITIONS: dict[FaultTag, str] = {
    FaultTag.ENVIRONMENT: (
        "Sudden change in external factors (e.g., construction zones, "
        "emergency vehicles, accidents)"),
    FaultTag.COMPUTER_SYSTEM: (
        "Computer-system-related problem (e.g., processor overload)"),
    FaultTag.RECOGNITION_SYSTEM: (
        "Failure to recognize outside environment correctly"),
    FaultTag.PLANNER: (
        "Planner failed to anticipate the other driver's behavior"),
    FaultTag.SENSOR: "Sensor failed to localize in time",
    FaultTag.NETWORK: "Data rate too high to be handled by the network",
    FaultTag.DESIGN_BUG: (
        "AV was not designed to handle an unforeseen situation"),
    FaultTag.SOFTWARE: (
        "Software-related problems such as hang or crash"),
    FaultTag.AV_CONTROLLER_UNRESPONSIVE: (
        "AV controller does not respond to commands"),
    FaultTag.AV_CONTROLLER_DECISION: (
        "AV controller makes wrong decisions/predictions"),
    FaultTag.HANG_CRASH: "Watchdog timer error",
    FaultTag.INCORRECT_BEHAVIOR_PREDICTION: (
        "Incorrect prediction of another road user's behavior"),
    FaultTag.UNKNOWN: (
        "No known tag could be associated with the textual description"),
}


def category_of(tag: FaultTag) -> FailureCategory:
    """Return the coarse failure category for ``tag``."""
    return TAG_CATEGORY[tag]


def ml_subcategory_of(tag: FaultTag) -> MlSubcategory | None:
    """Return the Table IV ML/Design split for ``tag`` (None outside ML)."""
    return ML_SUBCATEGORY.get(tag)


def tags_in_category(category: FailureCategory) -> list[FaultTag]:
    """Return all tags whose coarse category is ``category``."""
    return [tag for tag, cat in TAG_CATEGORY.items() if cat is category]
