"""Deterministic random-number utilities.

All stochastic behaviour in the library flows through
:class:`numpy.random.Generator` objects derived here.  Components never
share a generator implicitly: a parent seed is split into independent
child streams by name, so adding a new consumer does not perturb the
values drawn by existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Default seed for the "canonical" corpus used by benches and examples.
DEFAULT_SEED = 2018


def generator(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` maps to :data:`DEFAULT_SEED` so that every entry point is
    reproducible by default; pass an existing generator through untouched.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def child_seed(seed: int, name: str) -> int:
    """Derive a stable 63-bit child seed from ``seed`` and a stream name.

    The derivation hashes the ``(seed, name)`` pair, so streams for
    different names are statistically independent and insertion-order
    independent.
    """
    digest = hashlib.sha256(f"{seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def child_generator(seed: int, name: str) -> np.random.Generator:
    """Return an independent generator for the named child stream."""
    return np.random.default_rng(child_seed(seed, name))


def split(seed: int, names: list[str]) -> dict[str, np.random.Generator]:
    """Split ``seed`` into one independent generator per name."""
    return {name: child_generator(seed, name) for name in names}
