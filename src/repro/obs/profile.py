"""Profiling hooks: timed blocks and an optional cProfile capture.

Two levels of depth, both stdlib-only:

* :func:`timed` — a context manager that feeds one measured block
  into a registry histogram (and, when a tracer is live, a span).
  This is the everyday hook for ad-hoc "where does this function's
  time go" questions without touching the pipeline plumbing.
* :func:`profile_to` — wraps a block in :mod:`cProfile` and writes a
  ``pstats`` dump for ``snakeviz``/``pstats`` consumption.  Heavy;
  strictly opt-in, never wired into a default path.
"""

from __future__ import annotations

import cProfile
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from .metrics import MetricsRegistry
from .trace import NULL_TRACER, NullTracer, Tracer

#: Histogram that :func:`timed` blocks report into.
BLOCK_SECONDS = "repro_block_seconds"


@contextmanager
def timed(name: str, registry: MetricsRegistry | None = None,
          tracer: Tracer | NullTracer = NULL_TRACER,
          **attrs: Any) -> Iterator[None]:
    """Measure one block into ``registry``/``tracer`` (both optional).

    With neither supplied this degrades to a bare ``perf_counter``
    pair — cheap enough to leave in place permanently.
    """
    started = time.perf_counter()
    try:
        with tracer.span(name, kind="span", **attrs):
            yield
    finally:
        if registry is not None:
            registry.histogram(
                BLOCK_SECONDS, "Ad-hoc timed profiling blocks",
                ("block",)).labels(name).observe(
                time.perf_counter() - started)


@contextmanager
def profile_to(path: str | Path,
               *, builtins: bool = False) -> Iterator[cProfile.Profile]:
    """Run the block under :mod:`cProfile`; dump stats to ``path``.

    The profiler object is yielded so a caller can also inspect it in
    memory.  Not for hot paths — deterministic profiling costs an
    order of magnitude; this exists for offline "why is stage X slow"
    sessions (see docs/USAGE.md §15).
    """
    profiler = cProfile.Profile(builtins=builtins)
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        Path(path).parent.mkdir(parents=True, exist_ok=True)
        profiler.dump_stats(str(path))
