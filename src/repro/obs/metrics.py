"""Thread-safe metrics registry (counters, gauges, histograms).

A zero-dependency, Prometheus-compatible metrics substrate for the
pipeline and the query server.  Design constraints, in order:

* **No-op cheap when unused.**  Nothing in this module is touched by a
  run with metrics disabled: call sites hold ``None`` instead of a
  registry and skip instrumentation with one ``is not None`` branch.
* **Exact under concurrency.**  Every mutation happens under the
  owning metric's lock, so eight threads incrementing one counter
  produce the exact sum (verified in ``tests/test_obs.py``).
* **Mergeable.**  A worker process collects deltas in its own private
  registry and ships :meth:`MetricsRegistry.dump` home inside the
  unit outcome; the coordinator folds it in with
  :meth:`MetricsRegistry.merge` — exactly the shape of the resilience
  layer's health deltas.
* **Stable names.**  Exposition names are module constants; tests pin
  them so dashboards never silently break.

Histograms use **fixed** bucket boundaries (:data:`DEFAULT_BUCKETS`
for latencies): merged histograms from different processes therefore
always line up bucket-for-bucket.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterable, Mapping

# ----------------------------------------------------------------------
# Stable metric names (pinned by tests — treat as public API).
# ----------------------------------------------------------------------

#: Pipeline: per-stage coordinator wall time.
STAGE_DURATION = "repro_stage_duration_seconds"
#: Pipeline: units of work processed per stage (live, merged, restored).
UNITS_TOTAL = "repro_pipeline_units_total"
#: Resilience: transient faults retried.
RETRIES_TOTAL = "repro_retries_total"
#: Resilience: per-stage unexpected failures.
STAGE_ERRORS_TOTAL = "repro_stage_errors_total"
#: Resilience: degraded-mode fallbacks taken.
DEGRADATIONS_TOTAL = "repro_degradations_total"
#: Resilience: units dead-lettered to quarantine.
QUARANTINED_TOTAL = "repro_quarantined_total"
#: NLP: token-memo hits/misses (see :mod:`repro.nlp.textcache`).
TOKEN_CACHE_HITS = "repro_token_cache_hits_total"
TOKEN_CACHE_MISSES = "repro_token_cache_misses_total"
#: Server: requests by route and status code.
HTTP_REQUESTS = "repro_http_requests_total"
#: Server: request latency by route.
HTTP_LATENCY = "repro_http_request_seconds"
#: Server (sampled at scrape time from the query-result LRU).
QUERY_CACHE_HITS = "repro_query_cache_hits"
QUERY_CACHE_MISSES = "repro_query_cache_misses"
QUERY_CACHE_EVICTIONS = "repro_query_cache_evictions"
QUERY_CACHE_SIZE = "repro_query_cache_size"
#: Server (sampled at scrape time from the database index).
INDEX_RECORDS = "repro_index_records"
#: Serving: snapshot swaps by outcome (``ok`` / ``quarantined``).
SNAPSHOT_SWAPS = "repro_snapshot_swaps_total"
#: Serving: generation of the currently served snapshot.
SNAPSHOT_GENERATION = "repro_snapshot_generation"
#: Serving: candidate databases quarantined as corrupt.
SNAPSHOT_QUARANTINED = "repro_snapshot_quarantined_total"
#: Serving: requests shed by admission control (503 + Retry-After).
REQUESTS_SHED = "repro_requests_shed_total"
#: Serving: requests that blew their per-request deadline.
REQUEST_TIMEOUTS = "repro_request_timeouts_total"
#: Serving: requests currently being handled (admission gauge).
REQUESTS_INFLIGHT = "repro_requests_inflight"
#: Storage: rows converted to the columnar backend, by table.
STORAGE_ROWS = "repro_storage_rows_total"
#: Storage: wall time spent converting to the columnar backend.
STORAGE_CONVERT_SECONDS = "repro_storage_convert_seconds"
#: Parallel: dispatch chunks shipped to the worker pool, by stage.
BATCH_TASKS_TOTAL = "repro_batch_tasks_total"
#: Parallel: units that rode those chunks (units/task = units/tasks).
BATCH_UNITS_TOTAL = "repro_batch_units_total"
#: Parallel: pickled chunk-outcome payload bytes (payload/task =
#: bytes/tasks); an estimate of pipe traffic, measured coordinator-side.
BATCH_PAYLOAD_BYTES_TOTAL = "repro_batch_payload_bytes_total"
#: Pre-fork serving: per-worker identity gauge (always 1, labelled by
#: worker id) — the aggregated ``/metrics`` scrape proves which
#: workers contributed by which series are present.
SERVING_WORKER_UP = "repro_serving_worker_up"
#: Pre-fork serving: generation the worker is currently serving.
SERVING_WORKER_GENERATION = "repro_serving_worker_generation"
#: Pre-fork serving: crash respawns performed by the master.
SERVING_WORKER_RESTARTS = "repro_serving_worker_restarts_total"

#: Fixed latency bucket upper bounds in seconds (+Inf is implicit).
DEFAULT_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                   0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

_KINDS = ("counter", "gauge", "histogram")


def _escape_label(value: str) -> str:
    """Escape a label value per the Prometheus text exposition rules."""
    return (value.replace("\\", r"\\").replace('"', r"\"")
            .replace("\n", r"\n"))


def _format_value(value: float) -> str:
    """Render a sample value (integers without a trailing ``.0``)."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class _Series:
    """One labeled child of a metric — the object hot paths hold.

    Mutations lock the parent metric's lock; reading for exposition
    happens under the same lock, so snapshots are consistent.
    """

    __slots__ = ("_metric", "labelvalues", "value", "bucket_counts",
                 "sum", "count")

    def __init__(self, metric: "Metric",
                 labelvalues: tuple[str, ...]) -> None:
        self._metric = metric
        self.labelvalues = labelvalues
        self.value = 0.0
        if metric.kind == "histogram":
            self.bucket_counts = [0] * len(metric.buckets)
            self.sum = 0.0
            self.count = 0

    def inc(self, amount: float = 1.0) -> None:
        """Add to a counter (or gauge)."""
        with self._metric.lock:
            self.value += amount

    def set(self, value: float) -> None:
        """Set a gauge to an absolute value."""
        with self._metric.lock:
            self.value = value

    def observe(self, value: float) -> None:
        """Record one histogram observation into its fixed buckets."""
        metric = self._metric
        with metric.lock:
            index = bisect_left(metric.buckets, value)
            if index < len(self.bucket_counts):
                self.bucket_counts[index] += 1
            self.sum += value
            self.count += 1


class Metric:
    """One named family of series (shared name/help/kind/labels)."""

    __slots__ = ("name", "kind", "help", "labelnames", "buckets",
                 "lock", "_series")

    def __init__(self, name: str, kind: str, help: str = "",
                 labelnames: tuple[str, ...] = (),
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if kind not in _KINDS:
            raise ValueError(f"metric kind must be one of {_KINDS}, "
                             f"got {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(buckets) if kind == "histogram" else ()
        self.lock = threading.Lock()
        self._series: dict[tuple[str, ...], _Series] = {}

    def labels(self, *labelvalues: Any) -> _Series:
        """The child series for these label values (auto-created)."""
        key = tuple(str(v) for v in labelvalues)
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes {len(self.labelnames)} "
                f"label value(s) {self.labelnames}, got {len(key)}")
        with self.lock:
            series = self._series.get(key)
            if series is None:
                series = _Series(self, key)
                self._series[key] = series
            return series

    # Label-less convenience: a bare counter/gauge/histogram acts as
    # its own single series.
    def inc(self, amount: float = 1.0) -> None:
        """Increment the label-less series."""
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        """Set the label-less gauge series."""
        self.labels().set(value)

    def observe(self, value: float) -> None:
        """Observe into the label-less histogram series."""
        self.labels().observe(value)

    def _snapshot(self) -> dict[tuple[str, ...], Any]:
        """Series data under the lock (values or histogram triples)."""
        with self.lock:
            if self.kind == "histogram":
                return {key: {"buckets": list(s.bucket_counts),
                              "sum": s.sum, "count": s.count}
                        for key, s in self._series.items()}
            return {key: s.value for key, s in self._series.items()}


class MetricsRegistry:
    """A named collection of metrics with exposition and merge.

    Registration is idempotent: asking twice for the same name returns
    the same :class:`Metric`, and asking with a conflicting kind or
    label set raises — a name means one thing process-wide.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}

    # ------------------------------------------------------------------
    # Registration.
    # ------------------------------------------------------------------

    def counter(self, name: str, help: str = "",
                labelnames: Iterable[str] = ()) -> Metric:
        """Get or create a monotonically increasing counter."""
        return self._register(name, "counter", help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Iterable[str] = ()) -> Metric:
        """Get or create a settable gauge."""
        return self._register(name, "gauge", help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Iterable[str] = (),
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS,
                  ) -> Metric:
        """Get or create a fixed-bucket histogram."""
        return self._register(name, "histogram", help, labelnames,
                              buckets)

    def _register(self, name: str, kind: str, help: str,
                  labelnames: Iterable[str],
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS,
                  ) -> Metric:
        labelnames = tuple(labelnames)
        with self._lock:
            metric = self._metrics.get(name)
            if metric is not None:
                if (metric.kind != kind
                        or metric.labelnames != labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{metric.kind} with labels "
                        f"{metric.labelnames}")
                return metric
            metric = Metric(name, kind, help, labelnames, buckets)
            self._metrics[name] = metric
            return metric

    def get(self, name: str) -> Metric | None:
        """The registered metric, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        """Registered metric names, sorted."""
        with self._lock:
            return sorted(self._metrics)

    # ------------------------------------------------------------------
    # Snapshots, merge, exposition.
    # ------------------------------------------------------------------

    def dump(self) -> dict[str, Any]:
        """A mergeable snapshot (tuple-keyed; ships via pickle).

        This is the delta format parallel workers return to the
        coordinator — the metrics sibling of the resilience layer's
        health deltas.
        """
        with self._lock:
            metrics = list(self._metrics.values())
        return {
            m.name: {
                "kind": m.kind,
                "help": m.help,
                "labelnames": m.labelnames,
                "buckets": m.buckets,
                "series": m._snapshot(),
            }
            for m in metrics
        }

    def merge(self, dump: Mapping[str, Any]) -> None:
        """Fold a :meth:`dump` into this registry (additively).

        Counters and histograms accumulate; gauges adopt the incoming
        value (last writer wins — a gauge is a level, not a total).
        """
        for name, data in dump.items():
            if data["kind"] == "histogram":
                metric = self.histogram(
                    name, data["help"], data["labelnames"],
                    tuple(data["buckets"]))
            elif data["kind"] == "gauge":
                metric = self.gauge(name, data["help"],
                                    data["labelnames"])
            else:
                metric = self.counter(name, data["help"],
                                      data["labelnames"])
            for key, incoming in data["series"].items():
                series = metric.labels(*key)
                with metric.lock:
                    if metric.kind == "histogram":
                        if list(metric.buckets) != list(
                                data["buckets"]):
                            raise ValueError(
                                f"histogram {name!r} bucket layout "
                                "mismatch on merge")
                        for i, n in enumerate(incoming["buckets"]):
                            series.bucket_counts[i] += n
                        series.sum += incoming["sum"]
                        series.count += incoming["count"]
                    elif metric.kind == "gauge":
                        series.value = incoming
                    else:
                        series.value += incoming

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able snapshot (the CLI ``--json`` metrics section)."""
        out: dict[str, Any] = {}
        for name, data in sorted(self.dump().items()):
            series = []
            for key, value in sorted(data["series"].items()):
                labels = dict(zip(data["labelnames"], key))
                if data["kind"] == "histogram":
                    series.append({"labels": labels,
                                   "sum": value["sum"],
                                   "count": value["count"],
                                   "buckets": value["buckets"]})
                else:
                    series.append({"labels": labels, "value": value})
            out[name] = {"type": data["kind"], "series": series}
        return out

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format."""
        out: list[str] = []
        for name, data in sorted(self.dump().items()):
            if not data["series"]:
                continue
            if data["help"]:
                out.append(f"# HELP {name} {data['help']}")
            out.append(f"# TYPE {name} {data['kind']}")
            labelnames = data["labelnames"]
            for key, value in sorted(data["series"].items()):
                pairs = [f'{ln}="{_escape_label(lv)}"'
                         for ln, lv in zip(labelnames, key)]
                if data["kind"] == "histogram":
                    cumulative = 0
                    for bound, count in zip(data["buckets"],
                                            value["buckets"]):
                        cumulative += count
                        bucket_pairs = pairs + [f'le="{bound!r}"']
                        out.append(
                            f"{name}_bucket"
                            f"{{{','.join(bucket_pairs)}}} "
                            f"{cumulative}")
                    inf_pairs = pairs + ['le="+Inf"']
                    out.append(f"{name}_bucket"
                               f"{{{','.join(inf_pairs)}}} "
                               f"{value['count']}")
                    suffix = f"{{{','.join(pairs)}}}" if pairs else ""
                    out.append(f"{name}_sum{suffix} "
                               f"{_format_value(value['sum'])}")
                    out.append(f"{name}_count{suffix} "
                               f"{value['count']}")
                else:
                    suffix = f"{{{','.join(pairs)}}}" if pairs else ""
                    out.append(f"{name}{suffix} "
                               f"{_format_value(value)}")
        return "\n".join(out) + ("\n" if out else "")


#: Process-global default registry.  The pipeline writes here when a
#: run has ``metrics_enabled``; the query server records its request
#: metrics here (and samples cache/index gauges at scrape time), so
#: one ``/metrics`` scrape shows pipeline + server + cache series.
_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The shared process-global :class:`MetricsRegistry`."""
    return _DEFAULT
