"""Hierarchical structured tracing (run → stage → unit spans).

A :class:`Tracer` records **spans**: named intervals with monotonic
(``time.perf_counter``) timings, a parent link, free-form attributes,
and an ``ok``/``error`` status.  The pipeline opens one ``run`` span,
a ``stage`` span per stage, and (when tracing is on) a ``unit`` span
per document/record — units computed by a worker pool are recorded
from their shipped wall time, so a traced parallel run still covers
every unit.

Persistence is JSONL, one completed span per line, published with the
checkpoint layer's atomic write primitive: the tracer buffers
completed spans in memory and each :meth:`Tracer.flush` atomically
replaces the trace file with the full sequence so far.  A crash at
any instant therefore leaves a **valid JSONL prefix** of the run on
disk — exactly the durability story the checkpoint journals tell —
and the runner flushes at every stage boundary.

The disabled path is :data:`NULL_TRACER`: ``span`` hands back a
shared no-op context manager and ``record``/``flush`` return
immediately, so instrumentation costs one attribute check when
tracing is off.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Any, Iterator

#: Span kinds the pipeline emits (free-form for other callers).
SPAN_KINDS = ("run", "stage", "unit", "span")


class _NullSpan:
    """Reusable no-op context manager for the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> dict[str, Any]:
        return {}

    def __exit__(self, *exc_info: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a near-free no-op."""

    __slots__ = ()
    enabled = False

    def span(self, name: str, kind: str = "span",
             **attrs: Any) -> _NullSpan:
        """The shared no-op span scope."""
        return _NULL_SPAN

    def record(self, name: str, kind: str, duration_s: float,
               **attrs: Any) -> None:
        """Discard an externally measured span."""
        return None

    def flush(self) -> None:
        """Nothing to publish."""
        return None

    def close(self) -> None:
        """Nothing to tear down."""
        return None


#: Shared disabled tracer (callers hold this instead of ``None`` so
#: ``tracer.enabled`` is always a valid check).
NULL_TRACER = NullTracer()


class _SpanScope:
    """Context manager for one live span."""

    __slots__ = ("_tracer", "_name", "_kind", "attrs", "_span_id",
                 "_parent_id", "_start")

    def __init__(self, tracer: "Tracer", name: str, kind: str,
                 attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._kind = kind
        self.attrs = attrs

    def __enter__(self) -> dict[str, Any]:
        self._span_id, self._parent_id = self._tracer._enter()
        self._start = time.perf_counter()
        return self.attrs  # mutate to attach attributes to the span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        duration = time.perf_counter() - self._start
        # SimulatedCrash (a BaseException) still closes the span as an
        # error, so a crash-killed trace names its last open work.
        self._tracer._exit(
            self._span_id, self._parent_id, self._name, self._kind,
            self._start, duration,
            "ok" if exc_type is None else "error", self.attrs)
        return False


class Tracer:
    """Collects hierarchical spans; optionally persists them as JSONL.

    Parent/child structure follows the per-thread call stack: a span
    opened while another is live on the same thread becomes its child.
    Span ids are sequential (assigned under the lock), so two traces
    of the same serial run are structurally identical.
    """

    enabled = True

    def __init__(self, path: str | Path | None = None) -> None:
        self._path = Path(path) if path is not None else None
        self._lock = threading.Lock()
        self._records: list[dict[str, Any]] = []
        # Each record's JSONL line, serialized once at record time so
        # a flush at every stage boundary stays O(new spans), not
        # O(all spans x boundaries).
        self._lines: list[str] = []
        self._next_id = 1
        self._local = threading.local()
        self._origin = time.perf_counter()
        self._dirty = False

    @property
    def path(self) -> Path | None:
        """Where :meth:`flush` publishes the JSONL trace (or None)."""
        return self._path

    # ------------------------------------------------------------------
    # Span lifecycle.
    # ------------------------------------------------------------------

    def span(self, name: str, kind: str = "span",
             **attrs: Any) -> _SpanScope:
        """A context manager recording one span around its body."""
        return _SpanScope(self, name, kind, attrs)

    def record(self, name: str, kind: str, duration_s: float,
               **attrs: Any) -> None:
        """Record an already-measured span (e.g. a pool-computed unit).

        The span is parented to the calling thread's current span and
        stamped at the current monotonic offset; ``duration_s`` is the
        externally measured wall time.
        """
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            self._append(self._line(
                span_id, parent, name, kind,
                time.perf_counter() - duration_s, duration_s, "ok",
                attrs))

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _enter(self) -> tuple[int, int | None]:
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        stack.append(span_id)
        return span_id, parent

    def _exit(self, span_id: int, parent_id: int | None, name: str,
              kind: str, start: float, duration: float, status: str,
              attrs: dict[str, Any]) -> None:
        stack = self._stack()
        if stack and stack[-1] == span_id:
            stack.pop()
        with self._lock:
            self._append(self._line(
                span_id, parent_id, name, kind, start, duration,
                status, attrs))

    def _append(self, record: dict[str, Any]) -> None:
        """Store a completed record and its pre-serialized line.

        Caller holds the lock.
        """
        self._records.append(record)
        self._lines.append(json.dumps(record, sort_keys=True) + "\n")
        self._dirty = True

    def _line(self, span_id: int, parent_id: int | None, name: str,
              kind: str, start: float, duration: float, status: str,
              attrs: dict[str, Any]) -> dict[str, Any]:
        line = {
            "span_id": span_id,
            "parent_id": parent_id,
            "name": name,
            "kind": kind,
            "start_s": round(start - self._origin, 9),
            "duration_s": round(duration, 9),
            "status": status,
        }
        if attrs:
            line["attrs"] = attrs
        return line

    # ------------------------------------------------------------------
    # Introspection and persistence.
    # ------------------------------------------------------------------

    def spans(self) -> list[dict[str, Any]]:
        """Completed spans so far (a copy, oldest first)."""
        with self._lock:
            return list(self._records)

    def flush(self) -> None:
        """Atomically publish every completed span as JSONL.

        Write-temp + fsync + rename (the checkpoint primitive): a
        reader — or a resumed run — only ever sees a complete, valid
        JSONL file.  Cheap when nothing changed since the last flush.
        """
        if self._path is None:
            return
        with self._lock:
            if not self._dirty:
                return
            text = "".join(self._lines)
            self._dirty = False
        # Imported lazily: the pipeline package imports this module's
        # package (via the runner), so a top-level import would cycle.
        from ..pipeline.checkpoint import atomic_write_text

        self._path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(self._path, text)

    def close(self) -> None:
        """Final flush (idempotent)."""
        self.flush()


# ----------------------------------------------------------------------
# Saved-trace analysis (the ``repro trace`` CLI verb).
# ----------------------------------------------------------------------

def load_trace(path: str | Path) -> list[dict[str, Any]]:
    """Read a JSONL trace file, skipping undecodable lines.

    A trace flushed through :meth:`Tracer.flush` is always fully
    valid; tolerance here covers hand-truncated files and foreign
    producers.
    """
    spans: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "span_id" in record:
                spans.append(record)
    return spans


def self_times(spans: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Aggregate spans into a self-time table, hottest first.

    Self time is a span's duration minus its direct children's — the
    classic profiler decomposition, so the table's self column sums
    to (roughly) the run's wall clock.  Unit spans are grouped under
    their stage (``<stage> units``); run/stage spans group by name.
    """
    child_time: dict[int, float] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None:
            child_time[parent] = (child_time.get(parent, 0.0)
                                  + span.get("duration_s", 0.0))
    rows: dict[tuple[str, str], dict[str, Any]] = {}
    for span in spans:
        kind = span.get("kind", "span")
        if kind == "unit":
            stage = (span.get("attrs") or {}).get("stage", "?")
            key = (kind, f"{stage} units")
        else:
            key = (kind, span.get("name", "?"))
        row = rows.get(key)
        if row is None:
            row = rows[key] = {"name": key[1], "kind": kind,
                               "count": 0, "total_s": 0.0,
                               "self_s": 0.0, "errors": 0}
        duration = span.get("duration_s", 0.0)
        row["count"] += 1
        row["total_s"] += duration
        row["self_s"] += max(
            0.0, duration - child_time.get(span.get("span_id"), 0.0))
        if span.get("status") == "error":
            row["errors"] += 1
    return sorted(rows.values(),
                  key=lambda r: (-r["self_s"], r["name"]))


def iter_stage_names(spans: list[dict[str, Any]]) -> Iterator[str]:
    """Names of the stage spans, in completion order."""
    for span in spans:
        if span.get("kind") == "stage":
            yield span.get("name", "?")
