"""The per-run observability context the pipeline threads through.

One :class:`Observability` object bundles the run's tracer and (when
enabled) metrics registry, plus the pre-resolved hot-path handles the
stage loops use.  A disabled context is a handful of ``None``/
:data:`~repro.obs.trace.NULL_TRACER` fields, so the instrumented
runner costs one branch per unit when observability is off —
``benchmarks/bench_obs.py`` holds that to ~0%.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator

from .metrics import (
    STAGE_DURATION,
    UNITS_TOTAL,
    MetricsRegistry,
    default_registry,
)
from .trace import NULL_TRACER, NullTracer, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..pipeline.config import PipelineConfig


class Observability:
    """Tracer + metrics for one pipeline run (both optional)."""

    __slots__ = ("tracer", "registry", "_stage_hist", "_units")

    def __init__(self, tracer: Tracer | NullTracer = NULL_TRACER,
                 registry: MetricsRegistry | None = None) -> None:
        self.tracer = tracer
        self.registry = registry
        self._stage_hist = None
        self._units = None
        if registry is not None:
            self._stage_hist = registry.histogram(
                STAGE_DURATION,
                "Coordinator wall time per pipeline stage",
                ("stage",))
            self._units = registry.counter(
                UNITS_TOTAL,
                "Units of work processed per stage",
                ("stage",))

    @classmethod
    def off(cls) -> "Observability":
        """A fully disabled context."""
        return cls()

    @classmethod
    def for_run(cls, config: "PipelineConfig",
                registry: MetricsRegistry | None = None,
                ) -> "Observability":
        """The context a :class:`PipelineConfig` asks for.

        Each run records into a fresh registry (unless an explicit one
        is given) so its diagnostics snapshot covers exactly this run;
        :meth:`publish` folds the run into the process-global default
        registry afterwards so an in-process query server still
        exposes cumulative pipeline series on ``/metrics``.
        """
        path = config.trace_path
        tracer = Tracer(path) if config.tracing_active else NULL_TRACER
        if not config.metrics_enabled:
            registry = None
        elif registry is None:
            registry = MetricsRegistry()
        return cls(tracer, registry)

    def publish(self) -> None:
        """Fold this run's metrics into the process-global registry.

        No-op when metrics are off or when the run already recorded
        straight into the default registry (an explicit
        ``registry=default_registry()``).
        """
        if self.registry is None:
            return
        default = default_registry()
        if self.registry is not default:
            default.merge(self.registry.dump())

    @property
    def active(self) -> bool:
        """Whether any instrumentation is live."""
        return self.tracer.enabled or self.registry is not None

    # ------------------------------------------------------------------
    # Hot-path helpers.
    # ------------------------------------------------------------------

    @contextmanager
    def stage(self, name: str, **attrs: Any) -> Iterator[None]:
        """Span + duration histogram around one stage; flushes after.

        The flush at every stage boundary is what makes a crash-killed
        trace a valid JSONL prefix of the run.
        """
        started = time.perf_counter()
        try:
            with self.tracer.span(name, kind="stage", **attrs):
                yield
        finally:
            if self._stage_hist is not None:
                self._stage_hist.labels(name).observe(
                    time.perf_counter() - started)
            self.tracer.flush()

    def unit(self, stage: str, unit_id: str):
        """A span around one serially computed unit (no-op when off)."""
        if not self.tracer.enabled:
            return _NULL_UNIT
        return self.tracer.span(unit_id, kind="unit", stage=stage)

    def merged_unit(self, stage: str, unit_id: str,
                    elapsed: float) -> None:
        """Record a pool-computed unit from its shipped wall time."""
        if self.tracer.enabled:
            self.tracer.record(unit_id, "unit", elapsed, stage=stage,
                               pooled=True)

    def restored_unit(self, stage: str, unit_id: str) -> None:
        """Record a unit adopted from a checkpoint (zero duration)."""
        if self.tracer.enabled:
            self.tracer.record(unit_id, "unit", 0.0, stage=stage,
                               restored=True)

    def unit_counter(self, stage: str):
        """A pre-resolved per-stage unit counter (None when off)."""
        if self._units is None:
            return None
        return self._units.labels(stage)

    def close(self) -> None:
        """Final trace flush (safe after a simulated crash)."""
        self.tracer.close()


class _NullUnit:
    """Shared no-op for :meth:`Observability.unit` when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: Any) -> bool:
        return False


_NULL_UNIT = _NullUnit()
