"""Observability layer: structured tracing, metrics, profiling hooks.

The pipeline (Stages I-IV), the resilience layer, and the query
server all *measure the system*; this package lets the system measure
**itself** — zero external dependencies, and a true no-op when
disabled:

* :mod:`~repro.obs.trace` — :class:`Tracer`: hierarchical spans
  (run → stage → unit) with monotonic timings, attributes, and
  status, persisted as crash-safe JSONL (every flush is an atomic
  whole-file publish, so a killed run leaves a valid prefix).
* :mod:`~repro.obs.metrics` — :class:`MetricsRegistry`: thread-safe
  counters/gauges/histograms with fixed bucket boundaries, mergeable
  across worker processes, rendered as Prometheus text by the query
  server's ``/metrics`` endpoint.
* :mod:`~repro.obs.runtime` — :class:`Observability`: the per-run
  bundle the pipeline threads through its stage loops.
* :mod:`~repro.obs.profile` — opt-in profiling hooks (:func:`timed`
  blocks, :func:`profile_to` cProfile capture).

Quickstart::

    from repro.api import PipelineConfig, run_pipeline

    result = run_pipeline(PipelineConfig(
        trace_dir="./traces", metrics_enabled=True))
    # ./traces/trace.jsonl now holds the span tree;
    # `repro trace ./traces/trace.jsonl` renders the self-time table.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    HTTP_LATENCY,
    HTTP_REQUESTS,
    STAGE_DURATION,
    UNITS_TOTAL,
    MetricsRegistry,
    default_registry,
)
from .profile import profile_to, timed
from .runtime import Observability
from .trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    load_trace,
    self_times,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "HTTP_LATENCY",
    "HTTP_REQUESTS",
    "STAGE_DURATION",
    "UNITS_TOTAL",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Observability",
    "Tracer",
    "default_registry",
    "load_trace",
    "profile_to",
    "self_times",
    "timed",
]
