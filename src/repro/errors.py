"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at pipeline boundaries while the
individual stages raise more specific subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CalibrationError(ReproError):
    """A calibration constant is missing or inconsistent."""


class SynthesisError(ReproError):
    """The synthetic corpus generator was asked for something impossible."""


class OcrError(ReproError):
    """The OCR substrate failed to process a document."""


class ParseError(ReproError):
    """A raw report could not be parsed into canonical records."""

    def __init__(self, message: str, *, line: str | None = None,
                 manufacturer: str | None = None) -> None:
        super().__init__(message)
        self.line = line
        self.manufacturer = manufacturer

    def __str__(self) -> str:  # pragma: no cover - formatting only
        base = super().__str__()
        parts = [base]
        if self.manufacturer is not None:
            parts.append(f"manufacturer={self.manufacturer!r}")
        if self.line is not None:
            parts.append(f"line={self.line!r}")
        return " | ".join(parts)


class FieldCoercionError(ParseError):
    """A field value could not be coerced to its canonical type."""


class UnknownFormatError(ParseError):
    """No registered parser recognizes the report format."""


class NlpError(ReproError):
    """The NLP tagging engine failed."""


class OntologyError(NlpError):
    """A fault tag or failure category is not part of the ontology."""


class StpaError(ReproError):
    """The STPA control-structure model was queried inconsistently."""


class PipelineError(ReproError):
    """A pipeline stage failed or stages were run out of order."""


class TransientError(ReproError):
    """A stage failed in a way that may succeed on retry.

    Raise (or translate into) this class to opt a failure into the
    resilience layer's bounded-retry path; anything else is treated as
    permanent and goes straight to the failure policy.
    """


class QuarantinedError(PipelineError):
    """A unit of work was moved to the quarantine dead-letter store.

    Raised by the resilience layer so the caller can skip the unit and
    continue; the original exception is preserved as ``__cause__`` and
    in the :class:`~repro.pipeline.resilience.QuarantineEntry`.
    """

    def __init__(self, message: str, *, unit_id: str | None = None,
                 stage: str | None = None) -> None:
        super().__init__(message)
        self.unit_id = unit_id
        self.stage = stage


class CorruptDatabaseError(ReproError):
    """A persisted database (or checkpoint artifact) failed integrity.

    Raised by :meth:`repro.pipeline.store.FailureDatabase.from_json` /
    :meth:`~repro.pipeline.store.FailureDatabase.load` when the
    on-disk JSON is torn, malformed, fails its checksum, or is missing
    required fields — instead of surfacing raw ``KeyError`` /
    ``json.JSONDecodeError``.  ``path`` names the offending file (when
    known) and ``reason`` the specific integrity failure.
    """

    def __init__(self, message: str, *, path: str | None = None,
                 reason: str | None = None) -> None:
        super().__init__(message)
        self.path = path
        self.reason = reason

    def __str__(self) -> str:  # pragma: no cover - formatting only
        base = super().__str__()
        parts = [base]
        if self.path is not None:
            parts.append(f"path={self.path!r}")
        if self.reason is not None:
            parts.append(f"reason={self.reason!r}")
        return " | ".join(parts)


class QueryError(ReproError, ValueError):
    """A query handed to the query/serving layer is invalid.

    Unknown metric, unsupported group-by, malformed filter, and so on.
    Also a :class:`ValueError`, so the CLI's existing invalid-input
    handling (exit code 2) applies unchanged; the HTTP layer maps it
    to a 400 response.
    """


class DegradedModeWarning(UserWarning):
    """The pipeline fell back to a reduced-fidelity mode.

    A warning, not an error: the run continues, but an output was
    produced by a fallback (e.g. the seed dictionary instead of the
    corpus-expanded one) and downstream consumers may want to know.
    """


class AnalysisError(ReproError):
    """A statistical analysis was asked to operate on unusable data."""


class InsufficientDataError(AnalysisError):
    """Too few observations to compute the requested statistic."""
