"""Trip-level micro-simulation of Level-3 AV operation.

The paper's data gives marginal rates (DPM, APM, DPA) and a causal
narrative (disengagement -> small action window -> sometimes an
accident; plus rear-end collisions from other drivers misreading the
AV).  This package closes the loop with a generative model: simulate
trips with a per-mile disengagement hazard, a driver model (reaction
times, proactive takeovers), and a traffic-conflict model (time
budgets, other-driver anticipation failures), then measure the same
DPM/APM/DPA statistics from the simulated fleet and compare them
against the field data.

The simulator is the instrument for the counterfactuals the paper can
only argue verbally: what happens to APM if drivers get less alert, if
the ADS gets faster at raising takeover requests, or if other drivers
learn to anticipate AV behavior.
"""

from .config import DriverConfig, SimulatorConfig, TrafficConfig
from .engine import FleetResult, TripResult, simulate_fleet, simulate_trip
from .calibrate import calibrate_from_database

__all__ = [
    "DriverConfig",
    "SimulatorConfig",
    "TrafficConfig",
    "FleetResult",
    "TripResult",
    "simulate_fleet",
    "simulate_trip",
    "calibrate_from_database",
]
