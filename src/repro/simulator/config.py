"""Simulator configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import AnalysisError


@dataclass(frozen=True)
class DriverConfig:
    """Safety-driver model parameters."""

    #: Exponentiated-Weibull reaction-time parameters (seconds).
    reaction_a: float = 1.4
    reaction_c: float = 1.6
    reaction_scale: float = 0.55
    #: Multiplier on sampled reaction times (1.0 = calibrated
    #: alertness; >1 models a less attentive driver).
    alertness_factor: float = 1.0
    #: Share of disengagements the driver initiates proactively
    #: *before* the system detects trouble (Table V manual share).
    proactive_share: float = 0.5

    def __post_init__(self) -> None:
        if min(self.reaction_a, self.reaction_c,
               self.reaction_scale) <= 0:
            raise AnalysisError("reaction parameters must be positive")
        if self.alertness_factor <= 0:
            raise AnalysisError("alertness factor must be positive")
        if not 0.0 <= self.proactive_share <= 1.0:
            raise AnalysisError("proactive share outside [0, 1]")


@dataclass(frozen=True)
class TrafficConfig:
    """Traffic-environment model parameters."""

    #: P(a conflicting road user is present when a disengagement
    #: happens) — intersections, merges, followers.
    conflict_probability: float = 0.15
    #: Mean of the exponential time budget the conflict allows (s).
    mean_time_budget_s: float = 2.5
    #: Mean ADS fault-detection latency before the takeover request
    #: (s); proactive driver takeovers skip this.
    mean_detection_latency_s: float = 0.5
    #: Per-mile rate of *other-driver* collisions with a normally
    #: operating AV (Case Study II: anticipation failures).  These
    #: accidents need no preceding disengagement.
    anticipation_accident_rate_per_mile: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.conflict_probability <= 1.0:
            raise AnalysisError("conflict probability outside [0, 1]")
        if self.mean_time_budget_s <= 0:
            raise AnalysisError("time budget must be positive")
        if self.mean_detection_latency_s < 0:
            raise AnalysisError("detection latency must be >= 0")
        if self.anticipation_accident_rate_per_mile < 0:
            raise AnalysisError("anticipation rate must be >= 0")


@dataclass(frozen=True)
class SimulatorConfig:
    """Full configuration of one simulated fleet."""

    #: Per-mile disengagement hazard (the field DPM).
    dpm: float = 0.001
    #: Median trip length (miles); trips are lognormal around it.
    median_trip_miles: float = 10.0
    #: Lognormal sigma of trip lengths.
    trip_sigma: float = 0.8
    driver: DriverConfig = field(default_factory=DriverConfig)
    traffic: TrafficConfig = field(default_factory=TrafficConfig)

    def __post_init__(self) -> None:
        if self.dpm < 0:
            raise AnalysisError("dpm must be >= 0")
        if self.median_trip_miles <= 0:
            raise AnalysisError("median trip length must be positive")
        if self.trip_sigma < 0:
            raise AnalysisError("trip sigma must be >= 0")
