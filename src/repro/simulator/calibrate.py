"""Calibrate the simulator against a manufacturer's field data.

Pulls the per-mile disengagement rate, the manual (proactive) share,
and the fitted reaction-time distribution from the failure database;
sets the conflict probability so the *expected* disengagements-per-
accident matches the observed DPA; and splits the observed accidents
between reaction-window failures and other-driver anticipation
failures.
"""

from __future__ import annotations

import numpy as np
from scipy import stats as sstats

from ..analysis.alertness import fit_reaction_times
from ..errors import InsufficientDataError
from ..pipeline.store import FailureDatabase
from ..taxonomy import Modality
from .config import DriverConfig, SimulatorConfig, TrafficConfig

#: Share of field accidents attributed to other-driver anticipation
#: failures (both Section II case studies are of this kind; most
#: reported collisions were rear-ends on the AV).
DEFAULT_ANTICIPATION_SHARE = 0.5


def _window_exceed_probability(driver: DriverConfig,
                               traffic: TrafficConfig,
                               samples: int = 50000,
                               seed: int = 0) -> float:
    """P(response window > conflict budget), by Monte Carlo."""
    rng = np.random.default_rng(seed)
    reactions = sstats.exponweib.rvs(
        driver.reaction_a, driver.reaction_c,
        scale=driver.reaction_scale, size=samples, random_state=rng)
    reactions = reactions * driver.alertness_factor
    proactive = rng.random(samples) < driver.proactive_share
    detections = rng.exponential(
        traffic.mean_detection_latency_s, size=samples)
    windows = reactions + np.where(proactive, 0.0, detections)
    budgets = rng.exponential(traffic.mean_time_budget_s, size=samples)
    return float(np.mean(windows > budgets))


def calibrate_from_database(db: FailureDatabase, manufacturer: str,
                            anticipation_share: float =
                            DEFAULT_ANTICIPATION_SHARE,
                            ) -> SimulatorConfig:
    """Build a calibrated :class:`SimulatorConfig` for a manufacturer."""
    miles = db.miles_by_manufacturer().get(manufacturer, 0.0)
    if miles <= 0:
        raise InsufficientDataError(
            f"{manufacturer}: no miles in the database")
    records = db.disengagements_by_manufacturer().get(manufacturer, [])
    if not records:
        raise InsufficientDataError(
            f"{manufacturer}: no disengagements in the database")
    dpm = len(records) / miles

    manual = sum(1 for r in records if r.modality is Modality.MANUAL)
    modal = sum(1 for r in records
                if r.modality in (Modality.MANUAL, Modality.AUTOMATIC))
    proactive_share = manual / modal if modal else 0.5

    fit = fit_reaction_times(db, manufacturer)
    driver = DriverConfig(
        reaction_a=fit.a, reaction_c=fit.c, reaction_scale=fit.scale,
        proactive_share=proactive_share)

    accidents = len(db.accidents_by_manufacturer().get(
        manufacturer, []))
    traffic = TrafficConfig()
    if accidents:
        reaction_accidents = accidents * (1.0 - anticipation_share)
        anticipation_accidents = accidents - reaction_accidents
        # Target P(accident | disengagement) for the reaction channel.
        target = reaction_accidents / len(records)
        exceed = _window_exceed_probability(driver, traffic)
        conflict = min(max(target / max(exceed, 1e-6), 0.0), 1.0)
        traffic = TrafficConfig(
            conflict_probability=conflict,
            mean_time_budget_s=traffic.mean_time_budget_s,
            mean_detection_latency_s=traffic.mean_detection_latency_s,
            anticipation_accident_rate_per_mile=(
                anticipation_accidents / miles),
        )
    return SimulatorConfig(dpm=dpm, driver=driver, traffic=traffic)
