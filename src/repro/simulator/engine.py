"""The trip simulation engine.

A trip is a length in miles.  Disengagements arrive as a Poisson
process along it.  At each disengagement:

* With probability ``proactive_share`` the driver initiated it —
  there is no detection latency, and the response window is just the
  (alertness-scaled) reaction time.
* Otherwise the ADS raises a takeover request after an exponential
  detection latency, and the window is detection + reaction.

If a traffic conflict is present (probability
``conflict_probability``) the conflict allows an exponential time
budget; a response window exceeding it is an accident.  Independently,
other-driver anticipation failures (Case Study II) arrive as their own
Poisson process along the trip and collide with the AV regardless of
any disengagement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import stats as sstats

from ..errors import AnalysisError
from ..rng import generator
from .config import SimulatorConfig


@dataclass
class TripResult:
    """Outcome of one simulated trip."""

    miles: float
    disengagements: int = 0
    proactive_disengagements: int = 0
    reaction_accidents: int = 0
    anticipation_accidents: int = 0
    #: Response windows (s) observed at disengagements.
    windows: list[float] = field(default_factory=list)

    @property
    def accidents(self) -> int:
        """Total accidents on the trip."""
        return self.reaction_accidents + self.anticipation_accidents


@dataclass
class FleetResult:
    """Aggregated fleet statistics over many trips."""

    trips: int = 0
    miles: float = 0.0
    disengagements: int = 0
    proactive_disengagements: int = 0
    reaction_accidents: int = 0
    anticipation_accidents: int = 0
    windows: list[float] = field(default_factory=list)

    @property
    def accidents(self) -> int:
        """Total simulated accidents."""
        return self.reaction_accidents + self.anticipation_accidents

    @property
    def dpm(self) -> float:
        """Measured disengagements per mile."""
        return self.disengagements / self.miles if self.miles else 0.0

    @property
    def apm(self) -> float:
        """Measured accidents per mile."""
        return self.accidents / self.miles if self.miles else 0.0

    @property
    def dpa(self) -> float | None:
        """Measured disengagements per accident."""
        if self.accidents == 0:
            return None
        return self.disengagements / self.accidents

    @property
    def manual_share(self) -> float:
        """Share of disengagements that were driver-initiated."""
        if self.disengagements == 0:
            return 0.0
        return self.proactive_disengagements / self.disengagements

    @property
    def mean_window_s(self) -> float:
        """Mean response window at disengagements."""
        if not self.windows:
            return 0.0
        return float(np.mean(self.windows))

    def absorb(self, trip: TripResult) -> None:
        """Fold one trip into the fleet totals."""
        self.trips += 1
        self.miles += trip.miles
        self.disengagements += trip.disengagements
        self.proactive_disengagements += trip.proactive_disengagements
        self.reaction_accidents += trip.reaction_accidents
        self.anticipation_accidents += trip.anticipation_accidents
        self.windows.extend(trip.windows)


def _sample_reaction(config: SimulatorConfig,
                     rng: np.random.Generator) -> float:
    driver = config.driver
    value = float(sstats.exponweib.rvs(
        driver.reaction_a, driver.reaction_c,
        scale=driver.reaction_scale, random_state=rng))
    return value * driver.alertness_factor


def simulate_trip(config: SimulatorConfig,
                  rng: np.random.Generator) -> TripResult:
    """Simulate a single trip."""
    mu = np.log(config.median_trip_miles)
    miles = float(rng.lognormal(mu, config.trip_sigma))
    trip = TripResult(miles=miles)
    traffic = config.traffic

    count = rng.poisson(config.dpm * miles) if config.dpm > 0 else 0
    for _ in range(count):
        trip.disengagements += 1
        proactive = rng.random() < config.driver.proactive_share
        if proactive:
            trip.proactive_disengagements += 1
            window = _sample_reaction(config, rng)
        else:
            detection = (rng.exponential(
                traffic.mean_detection_latency_s)
                if traffic.mean_detection_latency_s > 0 else 0.0)
            window = detection + _sample_reaction(config, rng)
        trip.windows.append(window)
        if rng.random() < traffic.conflict_probability:
            budget = rng.exponential(traffic.mean_time_budget_s)
            if window > budget:
                trip.reaction_accidents += 1

    rate = traffic.anticipation_accident_rate_per_mile
    if rate > 0:
        trip.anticipation_accidents += int(rng.poisson(rate * miles))
    return trip


def simulate_fleet(config: SimulatorConfig, trips: int,
                   seed: int | None = None) -> FleetResult:
    """Simulate ``trips`` independent trips."""
    if trips <= 0:
        raise AnalysisError("trips must be positive")
    rng = generator(seed)
    fleet = FleetResult()
    for _ in range(trips):
        fleet.absorb(simulate_trip(config, rng))
    return fleet
