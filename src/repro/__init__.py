"""repro — a reproduction of *Hands Off the Wheel in Autonomous
Vehicles? A Systems Perspective on over a Million Miles of Field Data*
(Banerjee et al., DSN 2018).

The library implements the paper's full pipeline over a calibrated
synthetic CA DMV corpus:

* Stage I  — :mod:`repro.synth`: corpus synthesis (the data substitute).
* Stage I' — :mod:`repro.ocr`: the scanned-document/OCR channel.
* Stage II — :mod:`repro.parsing`: per-manufacturer parsing and
  normalization into canonical records.
* Stage III — :mod:`repro.nlp`: failure dictionary + voting tagger.
* Stage IV — :mod:`repro.analysis`: the statistical analyses.
* :mod:`repro.stpa` — the STPA control-structure model of Fig. 3.
* :mod:`repro.reporting` — regenerates every table and figure.

Quickstart::

    from repro import run_pipeline, PipelineConfig
    from repro.reporting import run_experiment

    result = run_pipeline(PipelineConfig(seed=2018))
    print(run_experiment("table7", result.database).render())
"""

from .errors import (
    AnalysisError,
    CalibrationError,
    CorruptDatabaseError,
    DegradedModeWarning,
    FieldCoercionError,
    InsufficientDataError,
    NlpError,
    OcrError,
    OntologyError,
    ParseError,
    PipelineError,
    QuarantinedError,
    QueryError,
    ReproError,
    StpaError,
    SynthesisError,
    TransientError,
    UnknownFormatError,
)
from .pipeline import (
    ChaosConfig,
    CheckpointStore,
    CrashPoint,
    FailureDatabase,
    FailurePolicy,
    PipelineConfig,
    PipelineResult,
    Quarantine,
    RunHealth,
    process_corpus,
    run_pipeline,
)
from .rng import DEFAULT_SEED
from .synth import SyntheticCorpus, generate_corpus
from .taxonomy import FailureCategory, FaultTag, Modality

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "api",
    "DEFAULT_SEED",
    "FailureCategory",
    "FaultTag",
    "Modality",
    "ChaosConfig",
    "CheckpointStore",
    "CrashPoint",
    "FailureDatabase",
    "FailurePolicy",
    "PipelineConfig",
    "PipelineResult",
    "Quarantine",
    "RunHealth",
    "SyntheticCorpus",
    "generate_corpus",
    "process_corpus",
    "run_pipeline",
    # Errors.
    "ReproError",
    "CalibrationError",
    "SynthesisError",
    "OcrError",
    "ParseError",
    "FieldCoercionError",
    "UnknownFormatError",
    "NlpError",
    "OntologyError",
    "StpaError",
    "PipelineError",
    "TransientError",
    "QuarantinedError",
    "CorruptDatabaseError",
    "DegradedModeWarning",
    "AnalysisError",
    "InsufficientDataError",
    "QueryError",
    # Query & serving layer.
    "Query",
    "QueryEngine",
    "QueryResult",
    "QueryServer",
]

# The query layer embeds __version__ in its HTTP responses, so it can
# only be imported once this module has bound it (kept last on
# purpose — not an oversight).
from .query import (  # noqa: E402
    Query,
    QueryEngine,
    QueryResult,
    QueryServer,
)


def __getattr__(name: str):
    """Lazily expose the :mod:`repro.api` facade as ``repro.api``.

    The facade pulls in the observability layer; loading it on first
    attribute access keeps ``import repro`` itself lean and cycle-free
    while ``repro.api`` stays reachable without an explicit submodule
    import.
    """
    if name == "api":
        import importlib

        return importlib.import_module(".api", __name__)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
