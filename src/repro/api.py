"""The stable public facade — import :mod:`repro.api`, not internals.

Everything a downstream consumer (notebook, service, test, script)
needs lives here under one import, with the internal module layout
free to keep moving underneath:

* **Pipeline**: :func:`run_pipeline`, :func:`process_corpus`,
  :func:`build_corpus`, :class:`PipelineConfig`,
  :class:`PipelineResult`.
* **Persistence**: :func:`load_database`, :class:`FailureDatabase`,
  :class:`ColumnarFailureDatabase`, :func:`save_columnar`,
  :func:`load_columnar`, :func:`detect_storage_format`.
* **Query & serving**: :class:`Query`, :class:`QueryEngine`,
  :class:`QueryResult`, :class:`QueryServer`.
* **Observability**: :class:`MetricsRegistry`,
  :func:`default_registry`, :class:`Tracer`, :func:`load_trace`,
  :func:`self_times` (see :mod:`repro.obs`).
* **Typed errors**: :class:`ReproError` and the public subclasses a
  caller is expected to catch.

Quickstart::

    from repro.api import PipelineConfig, QueryServer, run_pipeline

    result = run_pipeline(PipelineConfig(seed=2018))
    with QueryServer(result.database, port=0) as server:
        ...  # GET {server.url}/query?metric=dpm&group_by=manufacturer

Anything importable from here is covered by the compatibility
promise: names are only added, never repurposed, and the CLI, docs,
and tests consume the library exclusively through this surface.
"""

from __future__ import annotations

from pathlib import Path

from .errors import (
    CorruptDatabaseError,
    DegradedModeWarning,
    InsufficientDataError,
    ParseError,
    PipelineError,
    QuarantinedError,
    QueryError,
    ReproError,
    TransientError,
)
from .obs import (
    MetricsRegistry,
    Observability,
    Tracer,
    default_registry,
    load_trace,
    self_times,
)
from .pipeline import (
    ChaosConfig,
    CrashPoint,
    FailureDatabase,
    FailurePolicy,
    IngestReport,
    IngestResult,
    PipelineConfig,
    PipelineResult,
    ServingChaos,
    ingest_corpus,
    process_corpus,
    run_pipeline,
)
from .query import (
    Query,
    QueryEngine,
    QueryResult,
    QueryServer,
    ShardedIndex,
    Snapshot,
    SnapshotManager,
)
from .serving import PreforkServer, serve_prefork
from .storage import (
    ColumnarFailureDatabase,
    detect_storage_format,
    load_any,
    load_columnar,
    save_columnar,
)
from .synth import SyntheticCorpus, generate_corpus

__all__ = [
    # Pipeline.
    "ChaosConfig",
    "CrashPoint",
    "FailurePolicy",
    "IngestReport",
    "IngestResult",
    "PipelineConfig",
    "PipelineResult",
    "ServingChaos",
    "build_corpus",
    "ingest_corpus",
    "process_corpus",
    "run_pipeline",
    "SyntheticCorpus",
    # Persistence.
    "ColumnarFailureDatabase",
    "FailureDatabase",
    "detect_storage_format",
    "load_columnar",
    "load_database",
    "save_columnar",
    # Query & serving.
    "PreforkServer",
    "Query",
    "QueryEngine",
    "QueryResult",
    "QueryServer",
    "ShardedIndex",
    "Snapshot",
    "SnapshotManager",
    "serve_prefork",
    # Observability.
    "MetricsRegistry",
    "Observability",
    "Tracer",
    "default_registry",
    "load_trace",
    "self_times",
    # Typed errors.
    "CorruptDatabaseError",
    "DegradedModeWarning",
    "InsufficientDataError",
    "ParseError",
    "PipelineError",
    "QuarantinedError",
    "QueryError",
    "ReproError",
    "TransientError",
]


def build_corpus(seed: int = 2018,
                 manufacturers: list[str] | None = None,
                 ) -> SyntheticCorpus:
    """Synthesize the raw Stage I corpus without processing it.

    A stable alias for :func:`repro.synth.generate_corpus`, named for
    what callers use it for: building the input to
    :func:`process_corpus` (e.g. to run several configs over one
    corpus).
    """
    return generate_corpus(seed, manufacturers)


def load_database(path: str | Path) -> FailureDatabase:
    """Load a persisted failure database, with typed failures.

    The on-disk format is auto-detected from the file's magic bytes:
    canonical JSON loads into the dict-backed database, a columnar
    artifact (``repro convert``, checkpoint blob) into the
    struct-of-arrays one — both satisfy the same
    :class:`FailureDatabase` interface and hash to the same
    fingerprint.

    Unlike calling :meth:`FailureDatabase.load` directly, a missing
    file surfaces as :class:`CorruptDatabaseError` too — callers
    (including every CLI verb) handle exactly one exception type for
    "this database is unusable", whatever the root cause.
    """
    try:
        return load_any(path)
    except FileNotFoundError as exc:
        raise CorruptDatabaseError(
            f"database file {str(path)!r} does not exist "
            "(run `repro run --out <path>` to create one)",
            path=str(path), reason="missing") from exc
