"""Columnar storage subsystem (struct-of-arrays corpus backend).

The corpus as columns instead of record objects: packed
:mod:`array` buffers for numerics, interned string pools for
categoricals, per-table versioned schemas — behind the exact
:class:`~repro.pipeline.store.FailureDatabase` interface the rest of
the repo already speaks.  Canonical JSON stays the golden-parity
interchange format: a columnar database serializes, fingerprints, and
analyzes byte-identically to its dict-backed twin.

Select it per run with ``PipelineConfig(storage_backend="columnar")``
(CLI ``--storage columnar``), or convert existing database files with
``repro convert``.
"""

from .backend import ColumnarFailureDatabase
from .columns import (
    BoolColumn,
    COLUMN_KINDS,
    FloatColumn,
    IntColumn,
    JsonColumn,
    StringColumn,
    StringPool,
)
from .io import (
    MAGIC,
    decode_columnar,
    detect_storage_format,
    encode_columnar,
    load_any,
    load_columnar,
    save_columnar,
)
from .schema import (
    ACCIDENT_SCHEMA,
    ColumnSpec,
    DISENGAGEMENT_SCHEMA,
    MILEAGE_SCHEMA,
    QUARANTINE_SCHEMA,
    STORAGE_FORMAT,
    TABLE_SCHEMAS,
    TableSchema,
)
from .table import ColumnTable

__all__ = [
    "ColumnarFailureDatabase",
    "ColumnTable",
    "ColumnSpec",
    "TableSchema",
    "StringPool",
    "StringColumn",
    "JsonColumn",
    "FloatColumn",
    "IntColumn",
    "BoolColumn",
    "COLUMN_KINDS",
    "STORAGE_FORMAT",
    "TABLE_SCHEMAS",
    "DISENGAGEMENT_SCHEMA",
    "ACCIDENT_SCHEMA",
    "MILEAGE_SCHEMA",
    "QUARANTINE_SCHEMA",
    "MAGIC",
    "encode_columnar",
    "decode_columnar",
    "save_columnar",
    "load_columnar",
    "load_any",
    "detect_storage_format",
]
