"""Binary on-disk format for columnar databases.

Layout (all offsets from the file start)::

    8 bytes   magic ``RPROCOL1``
    8 bytes   header length ``H`` (little-endian uint64)
    H bytes   header: compact JSON (sorted keys, UTF-8) describing the
              container — format revision, host byte order, per-table
              schema versions, and the name/byte-length of every
              column segment in body order; quarantine entries ride
              inline here (they are rare and tiny)
    rest      the raw column segments, concatenated in header order
              (``array.tobytes`` buffers + JSON exception side tables)

The header is self-describing enough to reject, loudly and with a
:class:`~repro.errors.CorruptDatabaseError`, anything this build
cannot decode faithfully: unknown format revisions, schema-version
drift, a file written on a host with the opposite byte order, or
truncated/overrun segments.  Writes go through the same
write-temp + fsync + ``os.replace`` primitive as every other artifact
in the repo, with a ``sha256sum``-compatible sidecar that loads verify
first.
"""

from __future__ import annotations

import hashlib
import json
import struct
import sys
from pathlib import Path
from typing import Any

from ..errors import CorruptDatabaseError
from ..pipeline.checkpoint import atomic_write_text
from ..pipeline.resilience import Quarantine, QuarantineEntry
from ..pipeline.store import FailureDatabase, _sidecar_path
from .backend import TABLE_NAMES, ColumnarFailureDatabase
from .columns import COLUMN_TYPES
from .schema import STORAGE_FORMAT, TABLE_SCHEMAS
from .table import ColumnTable

#: File magic: repro columnar, container revision 1.
MAGIC = b"RPROCOL1"

_LENGTH = struct.Struct("<Q")


def _columnar(db: FailureDatabase) -> ColumnarFailureDatabase:
    """A columnar view of ``db`` whose tables are authoritative."""
    if isinstance(db, ColumnarFailureDatabase) and not db._materialized:
        return db
    return ColumnarFailureDatabase.from_database(db)


def encode_columnar(db: FailureDatabase) -> bytes:
    """Serialize any database to the binary columnar format."""
    source = _columnar(db)
    tables_meta: list[dict[str, Any]] = []
    body: list[bytes] = []
    for name in TABLE_NAMES:
        table = source.tables[name]
        columns_meta = []
        for spec in table.schema.columns:
            column = table.column(spec.name)
            segments_meta = []
            for segment_name, payload in column.segments():
                segments_meta.append({"name": segment_name,
                                      "length": len(payload)})
                body.append(payload)
            columns_meta.append({"name": spec.name, "kind": spec.kind,
                                 "segments": segments_meta})
        tables_meta.append({
            "name": name,
            "version": table.schema.version,
            "rows": len(table),
            "columns": columns_meta,
        })
    header = {
        "format": STORAGE_FORMAT,
        "byteorder": sys.byteorder,
        "tables": tables_meta,
        "quarantine": [entry.to_dict()
                       for entry in source.quarantine],
    }
    header_bytes = json.dumps(
        header, ensure_ascii=False, sort_keys=True,
        separators=(",", ":")).encode("utf-8")
    return b"".join([MAGIC, _LENGTH.pack(len(header_bytes)),
                     header_bytes, *body])


def decode_columnar(blob: bytes, *,
                    source: str | Path | None = None,
                    ) -> ColumnarFailureDatabase:
    """Inverse of :func:`encode_columnar` (typed errors on damage)."""
    path = str(source) if source is not None else None

    def corrupt(reason: str) -> CorruptDatabaseError:
        return CorruptDatabaseError(
            f"columnar database is corrupt: {reason}",
            path=path, reason=reason)

    if len(blob) < len(MAGIC) + _LENGTH.size:
        raise corrupt(f"file too short ({len(blob)} bytes)")
    if blob[:len(MAGIC)] != MAGIC:
        raise corrupt(f"bad magic {blob[:len(MAGIC)]!r}")
    (header_len,) = _LENGTH.unpack_from(blob, len(MAGIC))
    offset = len(MAGIC) + _LENGTH.size
    if offset + header_len > len(blob):
        raise corrupt("header overruns the file")
    try:
        header = json.loads(blob[offset:offset + header_len])
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise corrupt(f"header is not valid JSON: {exc}") from exc
    offset += header_len

    if header.get("format") != STORAGE_FORMAT:
        raise corrupt(f"unsupported format revision "
                      f"{header.get('format')!r} "
                      f"(this build reads {STORAGE_FORMAT})")
    if header.get("byteorder") != sys.byteorder:
        raise corrupt(f"written on a {header.get('byteorder')!r}-endian "
                      f"host, this host is {sys.byteorder!r}-endian")

    tables_meta = header.get("tables")
    if not isinstance(tables_meta, list):
        raise corrupt("header has no table list")
    tables: dict[str, ColumnTable] = {}
    for table_meta in tables_meta:
        name = table_meta.get("name")
        schema = TABLE_SCHEMAS.get(name)
        if schema is None:
            raise corrupt(f"unknown table {name!r}")
        if table_meta.get("version") != schema.version:
            raise corrupt(
                f"table {name!r} schema v{table_meta.get('version')!r} "
                f"does not match this build's v{schema.version}")
        table = ColumnTable(schema)
        rows = table_meta.get("rows", 0)
        columns_meta = table_meta.get("columns", [])
        if ([  # column layout must match the schema exactly
                (c.get("name"), c.get("kind")) for c in columns_meta]
                != [(s.name, s.kind) for s in schema.columns]):
            raise corrupt(f"table {name!r} column layout does not "
                          f"match its schema")
        for column_meta in columns_meta:
            segments: dict[str, bytes] = {}
            for segment_meta in column_meta.get("segments", []):
                length = segment_meta.get("length")
                if (not isinstance(length, int) or length < 0
                        or offset + length > len(blob)):
                    raise corrupt(
                        f"segment {segment_meta.get('name')!r} of "
                        f"{name}.{column_meta['name']} overruns the "
                        f"file")
                segments[segment_meta["name"]] = \
                    blob[offset:offset + length]
                offset += length
            try:
                column = COLUMN_TYPES[column_meta["kind"]] \
                    .from_segments(segments)
            except Exception as exc:
                raise corrupt(
                    f"column {name}.{column_meta['name']} could not "
                    f"be decoded: {type(exc).__name__}: {exc}") from exc
            if len(column) != rows:
                raise corrupt(
                    f"column {name}.{column_meta['name']} has "
                    f"{len(column)} rows, table declares {rows}")
            table.columns[column_meta["name"]] = column
        table.rows_count = rows
        tables[name] = table
    if set(tables) != set(TABLE_NAMES):
        raise corrupt(f"expected tables {TABLE_NAMES}, "
                      f"file has {sorted(tables)}")

    try:
        quarantine = Quarantine(entries=[
            QuarantineEntry.from_dict(entry)
            for entry in header.get("quarantine", [])])
    except Exception as exc:
        raise corrupt(f"quarantine entries could not be decoded: "
                      f"{exc}") from exc
    return ColumnarFailureDatabase(tables=tables, quarantine=quarantine)


def save_columnar(db: FailureDatabase, path: str | Path, *,
                  durable: bool = True, checksum: bool = True,
                  crash: Any = None) -> None:
    """Write ``db`` to ``path`` in binary columnar form — atomically.

    Mirrors :meth:`FailureDatabase.save`: temp-file + fsync +
    ``os.replace`` commit, optional ``<name>.sha256`` sidecar, and the
    same ``save`` kill point for crash-recovery testing.
    """
    path = Path(path)
    blob = encode_columnar(db)
    atomic_write_text(
        path, blob, durable=durable,
        crash_hook=(None if crash is None
                    else lambda: crash.reached("save")))
    if checksum:
        atomic_write_text(
            _sidecar_path(path),
            f"{hashlib.sha256(blob).hexdigest()}  {path.name}\n",
            durable=durable)


def load_columnar(path: str | Path, *,
                  verify_checksum: bool = True,
                  ) -> ColumnarFailureDatabase:
    """Read a database written with :func:`save_columnar`."""
    path = Path(path)
    blob = path.read_bytes()
    sidecar = _sidecar_path(path)
    if verify_checksum and sidecar.exists():
        expected = sidecar.read_text(encoding="utf-8").split()
        if not expected or hashlib.sha256(blob).hexdigest() \
                != expected[0]:
            raise CorruptDatabaseError(
                f"columnar database file {path} does not match its "
                ".sha256 sidecar",
                path=str(path), reason="checksum mismatch")
    return decode_columnar(blob, source=path)


def detect_storage_format(path: str | Path) -> str:
    """``"columnar"`` or ``"json"``, sniffed from the file magic."""
    with open(path, "rb") as handle:
        prefix = handle.read(len(MAGIC))
    return "columnar" if prefix == MAGIC else "json"


def load_any(path: str | Path, *,
             verify_checksum: bool = True) -> FailureDatabase:
    """Load a database in whichever format the file is in."""
    if detect_storage_format(path) == "columnar":
        return load_columnar(path, verify_checksum=verify_checksum)
    return FailureDatabase.load(path, verify_checksum=verify_checksum)
