"""One columnar table: a schema plus its struct-of-arrays columns."""

from __future__ import annotations

from typing import Any, Iterator

from .columns import make_column
from .schema import TableSchema


class ColumnTable:
    """Rows of one record type stored column-wise.

    ``append_row``/``row`` speak the record ``to_dict`` payload shape,
    so the table round-trips the exact dicts the JSON path serializes
    — ``row(i)`` rebuilds keys in schema (== ``to_dict``) order.
    """

    __slots__ = ("schema", "columns", "rows_count")

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self.columns = {spec.name: make_column(spec.kind)
                        for spec in schema.columns}
        self.rows_count = 0

    def __len__(self) -> int:
        return self.rows_count

    def append_row(self, row: dict[str, Any]) -> None:
        """Append one record-payload dict.

        The key set must match the schema exactly: a silently dropped
        or defaulted field would break byte parity, so mismatches are
        a hard error.
        """
        if row.keys() != self.columns.keys():
            unexpected = sorted(row.keys() - self.columns.keys())
            missing = sorted(self.columns.keys() - row.keys())
            raise ValueError(
                f"row does not match {self.schema.name!r} schema "
                f"v{self.schema.version} (unexpected={unexpected}, "
                f"missing={missing})")
        for name, column in self.columns.items():
            column.append(row[name])
        self.rows_count += 1

    def row(self, index: int) -> dict[str, Any]:
        """Rebuild row ``index`` as its ``to_dict`` payload."""
        return {spec.name: self.columns[spec.name].get(index)
                for spec in self.schema.columns}

    def rows(self) -> Iterator[dict[str, Any]]:
        """All rows in order, each in ``to_dict`` payload form."""
        names = self.schema.column_names
        iterators = [iter(self.columns[name]) for name in names]
        for values in zip(*iterators):
            yield dict(zip(names, values))

    def column(self, name: str):
        """The backing column object for one field."""
        return self.columns[name]

    def extend(self, rows: Iterator[dict[str, Any]] | list) -> None:
        """Append every payload dict in ``rows``, in order."""
        for row in rows:
            self.append_row(row)
