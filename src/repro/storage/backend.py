"""Columnar `FailureDatabase`: same interface, struct-of-arrays inside.

:class:`ColumnarFailureDatabase` subclasses the dict-backed
:class:`~repro.pipeline.store.FailureDatabase` so every consumer —
Stage IV kernels, the query engine, the CLI — keeps working unchanged.
What changes is the data layout underneath:

* the corpus lives in :class:`~repro.storage.table.ColumnTable`s
  (packed arrays + interned string pools), not record-object lists;
* the record-list attributes (``disengagements`` / ``accidents`` /
  ``mileage``) are **lazy**: touching one materializes real record
  objects from the columns (the same ``from_dict`` path a JSON load
  takes) and caches them, so legacy record-scanning code still works;
* the hot scan hooks of the base class are overridden with
  column scans that walk the packed arrays directly — no record
  objects, no per-row attribute lookups, no repeated enum parsing —
  and return byte-identical results (same values, same dict insertion
  order, same left-to-right float accumulation).

Parity discipline: a column scan is only trusted while the columns are
authoritative.  Once a table's records have been materialized a caller
may have mutated them, so every override checks and falls back to the
(record-scanning) base implementation for that table — correctness
never depends on guessing whether a mutation happened.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterator

try:  # soft dependency: every kernel has a pure-stdlib fallback
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the repo env
    _np = None

from ..parsing.records import (
    AccidentRecord,
    DisengagementRecord,
    MonthlyMileage,
)
from ..pipeline.resilience import Quarantine
from ..pipeline.store import FailureDatabase
from ..taxonomy import FaultTag, Modality
from .schema import TABLE_SCHEMAS
from .table import ColumnTable

#: Record tables, in payload section order.
TABLE_NAMES = ("disengagements", "accidents", "mileage")

_FROM_DICT = {
    "disengagements": DisengagementRecord.from_dict,
    "accidents": AccidentRecord.from_dict,
    "mileage": MonthlyMileage.from_dict,
}


def _fresh_tables() -> dict[str, ColumnTable]:
    return {name: ColumnTable(TABLE_SCHEMAS[name])
            for name in TABLE_NAMES}


# ----------------------------------------------------------------------
# numpy kernel helpers (zero-copy views over the packed buffers).
#
# The vectorized scans lean on two exactness facts:
#
# * ``np.frombuffer`` aliases the ``array`` buffer — no copy, and the
#   view is built fresh per scan, so an append (which may reallocate
#   the buffer) can never leave a kernel reading stale memory.
# * ``np.bincount`` accumulates its weights *sequentially* into each
#   bin, i.e. it computes exactly the per-key left-fold the dict
#   backend's ``totals[key] = totals.get(key, 0.0) + value`` loop
#   does — grouped float sums are bit-identical, not just close.
# ----------------------------------------------------------------------

def _ids_view(column):
    """Pool-id buffer of a string column as an ``int32`` view."""
    return _np.frombuffer(column.ids, dtype=_np.int32)


def _f64_view(column):
    """Value buffer of a float column as a ``float64`` view."""
    return _np.frombuffer(column.values, dtype=_np.float64)


def _mask_view(column):
    """Null mask of a float/int column as a ``uint8`` view."""
    return _np.frombuffer(column.mask, dtype=_np.uint8)


def _first_seen(ids) -> list[int]:
    """Distinct values of ``ids`` in first-occurrence order.

    Reconstructs the insertion order a row-order dict fold would have
    produced, so vectorized results iterate identically to the base
    class's.  ``dict.fromkeys`` beats ``np.unique(return_index=True)``
    at the subset sizes these scans see (it avoids the sort).
    """
    return list(dict.fromkeys(ids.tolist()))


def _plain_floats(column) -> bool:
    """Whether a float column is pure packed doubles (no gaps)."""
    return not column.exceptions and not column.null_count


class ColumnarFailureDatabase(FailureDatabase):
    """Drop-in :class:`FailureDatabase` backed by columnar tables."""

    def __init__(self, tables: dict[str, ColumnTable] | None = None,
                 quarantine: Quarantine | None = None) -> None:
        self.tables = tables if tables is not None else _fresh_tables()
        if self.tables.keys() != set(TABLE_NAMES):
            raise ValueError(
                f"expected tables {TABLE_NAMES}, "
                f"got {sorted(self.tables)}")
        self.quarantine = (quarantine if quarantine is not None
                           else Quarantine())
        #: Table name -> cached record list, once materialized.
        self._materialized: dict[str, list] = {}
        #: Scan-support caches (pool-id -> enum / year lookups).
        self._caches: dict[tuple, list] = {}

    # ------------------------------------------------------------------
    # Conversion.
    # ------------------------------------------------------------------

    @classmethod
    def from_database(cls, db: FailureDatabase,
                      ) -> "ColumnarFailureDatabase":
        """Columnar copy of any database (shares no mutable state)."""
        tables = _fresh_tables()
        for record in db.disengagements:
            tables["disengagements"].append_row(record.to_dict())
        for record in db.accidents:
            tables["accidents"].append_row(record.to_dict())
        for cell in db.mileage:
            tables["mileage"].append_row(cell.to_dict())
        return cls(tables=tables,
                   quarantine=Quarantine(
                       entries=list(db.quarantine.entries)))

    def to_database(self) -> FailureDatabase:
        """Dict-backed copy (fresh record objects, fresh lists)."""
        return FailureDatabase(
            disengagements=list(self.disengagements),
            accidents=list(self.accidents),
            mileage=list(self.mileage),
            quarantine=Quarantine(entries=list(self.quarantine.entries)),
        )

    @classmethod
    def from_json(cls, text: str, *,
                  source: str | Path | None = None,
                  ) -> "ColumnarFailureDatabase":
        """Decode canonical JSON straight into columns."""
        return cls.from_database(
            FailureDatabase.from_json(text, source=source))

    # ------------------------------------------------------------------
    # Lazy record materialization.
    # ------------------------------------------------------------------

    def _records(self, name: str) -> list:
        cached = self._materialized.get(name)
        if cached is None:
            from_dict = _FROM_DICT[name]
            cached = [from_dict(row) for row in self.tables[name].rows()]
            self._materialized[name] = cached
        return cached

    @property
    def disengagements(self) -> list[DisengagementRecord]:
        return self._records("disengagements")

    @disengagements.setter
    def disengagements(self, value) -> None:
        self._materialized["disengagements"] = list(value)
        self.touch()

    @property
    def accidents(self) -> list[AccidentRecord]:
        return self._records("accidents")

    @accidents.setter
    def accidents(self, value) -> None:
        self._materialized["accidents"] = list(value)
        self.touch()

    @property
    def mileage(self) -> list[MonthlyMileage]:
        return self._records("mileage")

    @mileage.setter
    def mileage(self, value) -> None:
        self._materialized["mileage"] = list(value)
        self.touch()

    def _table(self, name: str) -> ColumnTable | None:
        """The table when its columns are still authoritative.

        ``None`` once the table's records have been materialized (a
        caller may have mutated the list) — overrides then fall back
        to the record-scanning base implementation.
        """
        return None if name in self._materialized else self.tables[name]

    # ------------------------------------------------------------------
    # Payload / fingerprint.
    # ------------------------------------------------------------------

    def _payload(self) -> dict[str, Any]:
        if self._materialized:
            return super()._payload()
        payload = {name: list(self.tables[name].rows())
                   for name in TABLE_NAMES}
        if self.quarantine:
            payload["quarantine"] = [e.to_dict()
                                     for e in self.quarantine]
        return payload

    def _content_token(self) -> tuple:
        return tuple(
            len(self._materialized[name]) if name in self._materialized
            else len(self.tables[name])
            for name in TABLE_NAMES) + (len(self.quarantine),)

    # ------------------------------------------------------------------
    # Scan-support caches.
    # ------------------------------------------------------------------

    def _enum_map(self, table: str, column: str, enum_cls) -> list:
        """Pool id -> enum member for one categorical column."""
        pool = self.tables[table].column(column).pool
        key = (table, column)
        cached = self._caches.get(key)
        if cached is None or len(cached) < len(pool.strings):
            cached = [enum_cls(s) for s in pool.strings]
            self._caches[key] = cached
        return cached

    def _year_map(self, table: str) -> list:
        """Pool id -> calendar year for a ``YYYY-MM`` month column."""
        pool = self.tables[table].column("month").pool
        key = (table, "month:year")
        cached = self._caches.get(key)
        if cached is None or len(cached) < len(pool.strings):
            cached = [int(s[:4]) for s in pool.strings]
            self._caches[key] = cached
        return cached

    @staticmethod
    def _plain(column) -> bool:
        """Whether a string column is pure pooled ids (fast-scannable)."""
        return not column.exceptions and not column.null_count

    @staticmethod
    def _vehicle_selection(man, vehicle, target: int):
        """Row mask: ``target``'s rows with a non-empty vehicle id.

        Mirrors the base class's ``if record.vehicle_id`` — ``None``
        (id ``-1``) and the pooled empty string both drop out.
        """
        vid = _ids_view(vehicle)
        sel = (_ids_view(man) == target) & (vid >= 0)
        empty = vehicle.pool.id_of("")
        if empty >= 0:
            sel &= vid != empty
        return sel, vid

    # ------------------------------------------------------------------
    # Vectorized scan overrides (byte-identical to the base class).
    # ------------------------------------------------------------------

    def manufacturers(self) -> list[str]:
        names: set[str] = set()
        for name in TABLE_NAMES:
            table = self._table(name)
            if table is None:
                names.update(r.manufacturer
                             for r in self._materialized[name])
            else:
                names.update(table.column("manufacturer").unique())
        return sorted(names)

    def miles_by_manufacturer(self) -> dict[str, float]:
        table = self._table("mileage")
        if table is None or not self._plain(
                table.column("manufacturer")):
            return super().miles_by_manufacturer()
        man = table.column("manufacturer")
        miles = table.column("miles")
        strings = man.pool.strings
        if _np is not None and _plain_floats(miles):
            ids = _ids_view(man)
            sums = _np.bincount(ids, weights=_f64_view(miles),
                                minlength=len(strings))
            return {strings[i]: float(sums[i])
                    for i in _first_seen(ids)}
        totals: dict[str, float] = {}
        get = totals.get
        for pooled, cell_miles in zip(man.ids, miles):
            name = strings[pooled]
            totals[name] = get(name, 0.0) + cell_miles
        return totals

    def monthly_miles(self, manufacturer: str) -> dict[str, float]:
        table = self._table("mileage")
        if table is None:
            return super().monthly_miles(manufacturer)
        man = table.column("manufacturer")
        month = table.column("month")
        if not self._plain(man) or not self._plain(month):
            return super().monthly_miles(manufacturer)
        target = man.pool.id_of(manufacturer)
        if target < 0:
            return {}
        months = month.pool.strings
        miles = table.column("miles")
        if _np is not None and _plain_floats(miles):
            sel = _ids_view(man) == target
            mo_sub = _ids_view(month)[sel]
            occurrences = _np.bincount(mo_sub, minlength=len(months))
            sums = _np.bincount(mo_sub, weights=_f64_view(miles)[sel],
                                minlength=len(months))
            present = _np.flatnonzero(occurrences).tolist()
            return {months[i]: float(sums[i]) for i
                    in sorted(present, key=months.__getitem__)}
        totals: dict[str, float] = {}
        get = totals.get
        for mid, mo, cell_miles in zip(man.ids, month.ids, miles):
            if mid == target:
                key = months[mo]
                totals[key] = get(key, 0.0) + cell_miles
        return dict(sorted(totals.items()))

    def monthly_disengagements(self, manufacturer: str,
                               ) -> dict[str, int]:
        table = self._table("disengagements")
        if table is None:
            return super().monthly_disengagements(manufacturer)
        man = table.column("manufacturer")
        month = table.column("month")
        if not self._plain(man) or not self._plain(month):
            return super().monthly_disengagements(manufacturer)
        target = man.pool.id_of(manufacturer)
        if target < 0:
            return {}
        months = month.pool.strings
        if _np is not None:
            mo_sub = _ids_view(month)[_ids_view(man) == target]
            occurrences = _np.bincount(mo_sub, minlength=len(months))
            present = _np.flatnonzero(occurrences).tolist()
            return {months[i]: int(occurrences[i]) for i
                    in sorted(present, key=months.__getitem__)}
        counts: dict[str, int] = {}
        get = counts.get
        for mid, mo in zip(man.ids, month.ids):
            if mid == target:
                key = months[mo]
                counts[key] = get(key, 0) + 1
        return dict(sorted(counts.items()))

    def vehicle_miles(self, manufacturer: str) -> dict[str, float]:
        table = self._table("mileage")
        if table is None:
            return super().vehicle_miles(manufacturer)
        man = table.column("manufacturer")
        vehicle = table.column("vehicle_id")
        if not self._plain(man) or vehicle.exceptions:
            return super().vehicle_miles(manufacturer)
        target = man.pool.id_of(manufacturer)
        if target < 0:
            return {}
        vehicles = vehicle.pool.strings
        miles = table.column("miles")
        if _np is not None and _plain_floats(miles):
            sel, vid = self._vehicle_selection(man, vehicle, target)
            vid_sub = vid[sel]
            sums = _np.bincount(vid_sub, weights=_f64_view(miles)[sel],
                                minlength=len(vehicles))
            return {vehicles[i]: float(sums[i])
                    for i in _first_seen(vid_sub)}
        totals: dict[str, float] = {}
        get = totals.get
        for mid, vid, cell_miles in zip(man.ids, vehicle.ids, miles):
            if mid == target and vid >= 0:
                name = vehicles[vid]
                if name:
                    totals[name] = get(name, 0.0) + cell_miles
        return totals

    def vehicle_disengagements(self, manufacturer: str,
                               ) -> dict[str, int]:
        table = self._table("disengagements")
        if table is None:
            return super().vehicle_disengagements(manufacturer)
        man = table.column("manufacturer")
        vehicle = table.column("vehicle_id")
        if not self._plain(man) or vehicle.exceptions:
            return super().vehicle_disengagements(manufacturer)
        target = man.pool.id_of(manufacturer)
        if target < 0:
            return {}
        vehicles = vehicle.pool.strings
        if _np is not None:
            sel, vid = self._vehicle_selection(man, vehicle, target)
            vid_sub = vid[sel]
            occurrences = _np.bincount(vid_sub,
                                       minlength=len(vehicles))
            return {vehicles[i]: int(occurrences[i])
                    for i in _first_seen(vid_sub)}
        counts: dict[str, int] = {}
        get = counts.get
        for mid, vid in zip(man.ids, vehicle.ids):
            if mid == target and vid >= 0:
                name = vehicles[vid]
                if name:
                    counts[name] = get(name, 0) + 1
        return counts

    def reaction_times(self, manufacturer: str | None = None,
                       ) -> list[float]:
        table = self._table("disengagements")
        if table is None:
            return super().reaction_times(manufacturer)
        times = table.column("reaction_time_s")
        if manufacturer is None:
            if times.exceptions:
                return [v for v in times if v is not None]
            if _np is not None:
                return _f64_view(times)[_mask_view(times) == 0] \
                    .tolist()
            return [v for v, masked in zip(times.values, times.mask)
                    if not masked]
        man = table.column("manufacturer")
        if not self._plain(man):
            return super().reaction_times(manufacturer)
        target = man.pool.id_of(manufacturer)
        if target < 0:
            return []
        if times.exceptions:
            out = []
            for row, mid in enumerate(man.ids):
                if mid == target:
                    value = times.get(row)
                    if value is not None:
                        out.append(value)
            return out
        if _np is not None:
            sel = (_ids_view(man) == target) & (_mask_view(times) == 0)
            return _f64_view(times)[sel].tolist()
        return [v for mid, v, masked in zip(man.ids, times.values,
                                            times.mask)
                if mid == target and not masked]

    @property
    def total_miles(self) -> float:
        table = self._table("mileage")
        if table is None:
            return super().total_miles
        miles = table.column("miles")
        if _np is not None and _plain_floats(miles) and len(miles):
            # cumsum accumulates left-to-right, so its last element is
            # bit-identical to the row-order Python fold (np.sum is
            # pairwise and would drift in the last ulps).
            return float(_np.cumsum(_f64_view(miles))[-1])
        return sum(miles)

    def vehicle_attribution_counts(self, manufacturer: str,
                                   ) -> tuple[int, int]:
        table = self._table("disengagements")
        if table is None:
            return super().vehicle_attribution_counts(manufacturer)
        man = table.column("manufacturer")
        vehicle = table.column("vehicle_id")
        if not self._plain(man) or vehicle.exceptions:
            return super().vehicle_attribution_counts(manufacturer)
        target = man.pool.id_of(manufacturer)
        if target < 0:
            return 0, 0
        vehicles = vehicle.pool.strings
        if _np is not None:
            sel, _ = self._vehicle_selection(man, vehicle, target)
            total = int(_np.count_nonzero(_ids_view(man) == target))
            return int(_np.count_nonzero(sel)), total
        attributed = 0
        total = 0
        for mid, vid in zip(man.ids, vehicle.ids):
            if mid == target:
                total += 1
                if vid >= 0 and vehicles[vid]:
                    attributed += 1
        return attributed, total

    def vehicle_year_miles(self, manufacturer: str,
                           ) -> dict[tuple[str, int], float]:
        table = self._table("mileage")
        if table is None:
            return super().vehicle_year_miles(manufacturer)
        man = table.column("manufacturer")
        vehicle = table.column("vehicle_id")
        month = table.column("month")
        if (not self._plain(man) or not self._plain(month)
                or vehicle.exceptions):
            return super().vehicle_year_miles(manufacturer)
        target = man.pool.id_of(manufacturer)
        if target < 0:
            return {}
        vehicles = vehicle.pool.strings
        years = self._year_map("mileage")
        miles = table.column("miles")
        if _np is not None and _plain_floats(miles):
            sel, vid = self._vehicle_selection(man, vehicle, target)
            vid_sub = vid[sel]
            if vid_sub.size == 0:
                return {}
            year_of = _np.asarray(years, dtype=_np.int64)
            base_year = int(year_of.min())
            span = int(year_of.max()) - base_year + 1
            composite = (vid_sub.astype(_np.int64) * span
                         + year_of[_ids_view(month)[sel]] - base_year)
            sums = _np.bincount(composite,
                                weights=_f64_view(miles)[sel],
                                minlength=len(vehicles) * span)
            return {(vehicles[key // span],
                     key % span + base_year): float(sums[key])
                    for key in _first_seen(composite)}
        totals: dict[tuple[str, int], float] = {}
        get = totals.get
        for mid, vid, mo, cell_miles in zip(man.ids, vehicle.ids,
                                            month.ids, miles):
            if mid == target and vid >= 0:
                name = vehicles[vid]
                if name:
                    key = (name, years[mo])
                    totals[key] = get(key, 0.0) + cell_miles
        return totals

    def vehicle_year_disengagements(self, manufacturer: str,
                                    ) -> dict[tuple[str, int], int]:
        table = self._table("disengagements")
        if table is None:
            return super().vehicle_year_disengagements(manufacturer)
        man = table.column("manufacturer")
        vehicle = table.column("vehicle_id")
        month = table.column("month")
        if (not self._plain(man) or not self._plain(month)
                or vehicle.exceptions):
            return super().vehicle_year_disengagements(manufacturer)
        target = man.pool.id_of(manufacturer)
        if target < 0:
            return {}
        vehicles = vehicle.pool.strings
        years = self._year_map("disengagements")
        if _np is not None:
            sel, vid = self._vehicle_selection(man, vehicle, target)
            vid_sub = vid[sel]
            if vid_sub.size == 0:
                return {}
            year_of = _np.asarray(years, dtype=_np.int64)
            base_year = int(year_of.min())
            span = int(year_of.max()) - base_year + 1
            composite = (vid_sub.astype(_np.int64) * span
                         + year_of[_ids_view(month)[sel]] - base_year)
            occurrences = _np.bincount(
                composite, minlength=len(vehicles) * span)
            return {(vehicles[key // span],
                     key % span + base_year): int(occurrences[key])
                    for key in _first_seen(composite)}
        counts: dict[tuple[str, int], int] = {}
        get = counts.get
        for mid, vid, mo in zip(man.ids, vehicle.ids, month.ids):
            if mid == target and vid >= 0:
                name = vehicles[vid]
                if name:
                    key = (name, years[mo])
                    counts[key] = get(key, 0) + 1
        return counts

    def tag_values(self, manufacturer: str,
                   use_truth: bool = False) -> list:
        table = self._table("disengagements")
        if table is None:
            return super().tag_values(manufacturer, use_truth)
        man = table.column("manufacturer")
        tags = table.column("truth_tag" if use_truth else "tag")
        if not self._plain(man) or tags.exceptions:
            return super().tag_values(manufacturer, use_truth)
        target = man.pool.id_of(manufacturer)
        if target < 0:
            return []
        members = self._enum_map(
            "disengagements", "truth_tag" if use_truth else "tag",
            FaultTag)
        if _np is not None:
            tid_sub = _ids_view(tags)[_ids_view(man) == target]
            return [members[tid]
                    for tid in tid_sub[tid_sub >= 0].tolist()]
        return [members[tid] for mid, tid in zip(man.ids, tags.ids)
                if mid == target and tid >= 0]

    def modality_values(self, manufacturer: str) -> list:
        table = self._table("disengagements")
        if table is None:
            return super().modality_values(manufacturer)
        man = table.column("manufacturer")
        modality = table.column("modality")
        if not self._plain(man) or modality.exceptions:
            return super().modality_values(manufacturer)
        target = man.pool.id_of(manufacturer)
        if target < 0:
            return []
        members = self._enum_map("disengagements", "modality", Modality)
        if _np is not None:
            mod_sub = _ids_view(modality)[_ids_view(man) == target]
            return [members[mod]
                    for mod in mod_sub[mod_sub >= 0].tolist()]
        return [members[mod]
                for mid, mod in zip(man.ids, modality.ids)
                if mid == target and mod >= 0]

    # ------------------------------------------------------------------
    # Index-build row streams.
    # ------------------------------------------------------------------

    def disengagement_index_rows(self) -> Iterator[tuple]:
        table = self._table("disengagements")
        if table is None:
            yield from super().disengagement_index_rows()
            return
        man = table.column("manufacturer")
        month = table.column("month")
        tags = table.column("tag")
        if (not self._plain(man) or not self._plain(month)
                or tags.exceptions):
            yield from super().disengagement_index_rows()
            return
        # Materializing here is fine: the columns were authoritative
        # an instant ago, and the grouping keys come from the arrays.
        records = self._records("disengagements")
        names = man.pool.strings
        months = month.pool.strings
        members = self._enum_map("disengagements", "tag", FaultTag)
        for record, mid, mo, tid in zip(records, man.ids, month.ids,
                                        tags.ids):
            yield (record, names[mid], months[mo],
                   None if tid < 0 else members[tid])

    def accident_index_rows(self) -> Iterator[tuple]:
        table = self._table("accidents")
        if table is None:
            yield from super().accident_index_rows()
            return
        man = table.column("manufacturer")
        if not self._plain(man):
            yield from super().accident_index_rows()
            return
        records = self._records("accidents")
        names = man.pool.strings
        for record, mid in zip(records, man.ids):
            yield record, names[mid]

    def mileage_index_rows(self) -> Iterator[tuple]:
        table = self._table("mileage")
        if table is None:
            yield from super().mileage_index_rows()
            return
        man = table.column("manufacturer")
        month = table.column("month")
        if not self._plain(man) or not self._plain(month):
            yield from super().mileage_index_rows()
            return
        records = self._records("mileage")
        names = man.pool.strings
        months = month.pool.strings
        for record, mid, mo, miles in zip(records, man.ids, month.ids,
                                          table.column("miles")):
            yield record, names[mid], months[mo], miles
