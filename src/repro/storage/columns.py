"""Column primitives: typed struct-of-arrays cells (stdlib only).

A column stores one field of one table for *all* rows, packed into a
:mod:`array` buffer instead of scattered across per-record dicts or
dataclass instances.  Four packed kinds cover the corpus schema —

* ``str``  — interned :class:`StringPool` ids (``array('i')``, ``-1``
  for ``None``); repeated categoricals (manufacturer, month, tag)
  cost 4 bytes per row plus one pooled copy of each distinct string.
* ``f64``  — ``array('d')`` values plus an ``array('B')`` null mask.
* ``i64``  — ``array('q')`` values plus a null mask.
* ``bool`` — ``array('b')`` with ``-1`` encoding ``None``.
* ``json`` — arbitrary JSON cells (e.g. ``time_of_day`` triples)
  stored as compact JSON text interned in a pool.

**Fidelity rule**: a column must reproduce the exact value it was
fed, byte-for-byte under :func:`json.dumps` — the whole storage
subsystem's parity guarantee rests on it.  A value whose JSON
rendering could drift through the packed representation (an ``int``
fed to a float column renders ``5``, not ``5.0``; a ``bool`` fed to
an int column renders ``true``, not ``1``) is kept verbatim in the
column's *exceptions* side table instead of being coerced.  Float
subclasses (``numpy.float64``) are packed: CPython's JSON encoder
renders any ``float`` instance via ``float.__repr__``, so packing is
invisible to the serialized bytes.

Columns expose their raw buffers via :meth:`memoryview` (zero-copy)
and serialize to named byte segments for the on-disk format in
:mod:`repro.storage.io`.
"""

from __future__ import annotations

import json
from array import array
from typing import Any, Iterator

#: Recognized column kinds (schema vocabulary).
COLUMN_KINDS = ("str", "f64", "i64", "bool", "json")


def _compact_json(value: Any) -> str:
    """Compact JSON that round-trips to an *equal* object.

    Insertion order is preserved (no ``sort_keys``) so a dict cell
    reloads with its keys in the original order — the payload
    serializers are order-sensitive.
    """
    return json.dumps(value, ensure_ascii=False,
                      separators=(",", ":"))


class StringPool:
    """Append-only interned string storage shared by a column.

    ``intern`` is O(1) amortized; ids are dense and stable, so a
    column of pool ids is a categorical encoding with the distinct
    values stored exactly once.
    """

    __slots__ = ("strings", "_ids")

    def __init__(self, strings: list[str] | None = None) -> None:
        self.strings: list[str] = list(strings) if strings else []
        self._ids: dict[str, int] = {
            s: i for i, s in enumerate(self.strings)}

    def intern(self, value: str) -> int:
        """Id of ``value``, adding it to the pool if new."""
        found = self._ids.get(value)
        if found is not None:
            return found
        new_id = len(self.strings)
        self.strings.append(value)
        self._ids[value] = new_id
        return new_id

    def id_of(self, value: str) -> int:
        """Id of ``value`` if pooled, else ``-1`` (never interns)."""
        return self._ids.get(value, -1)

    def __len__(self) -> int:
        return len(self.strings)

    # -- io segments ---------------------------------------------------

    def segments(self) -> list[tuple[str, bytes]]:
        """``(name, bytes)`` pairs for the on-disk format."""
        blob = "".join(self.strings).encode("utf-8")
        ends = array("q")
        total = 0
        for s in self.strings:
            total += len(s.encode("utf-8"))
            ends.append(total)
        return [("pool_ends", ends.tobytes()), ("pool_blob", blob)]

    @classmethod
    def from_segments(cls, segments: dict[str, bytes]) -> "StringPool":
        """Rebuild a pool from its on-disk segments."""
        ends = array("q")
        ends.frombytes(segments["pool_ends"])
        blob = segments["pool_blob"]
        strings = []
        start = 0
        for end in ends:
            strings.append(blob[start:end].decode("utf-8"))
            start = end
        return cls(strings)


class _Exceptions:
    """Shared verbatim side table: row -> original (unpacked) value."""

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: dict[int, Any] = {}

    def __bool__(self) -> bool:
        return bool(self.values)

    def segment(self) -> bytes:
        return _compact_json(
            {str(row): value
             for row, value in sorted(self.values.items())}
        ).encode("utf-8")

    def load(self, data: bytes) -> None:
        self.values = {int(row): value
                       for row, value in json.loads(data).items()}


class StringColumn:
    """Pool-id encoded string column (``-1`` = ``None``)."""

    KIND = "str"
    __slots__ = ("ids", "pool", "exceptions", "null_count")

    def __init__(self) -> None:
        self.ids = array("i")
        self.pool = StringPool()
        self.exceptions = _Exceptions()
        self.null_count = 0

    def append(self, value: Any) -> None:
        """Append one cell (``None``, a string, or verbatim fallback)."""
        if value is None:
            self.ids.append(-1)
            self.null_count += 1
        elif isinstance(value, str):
            self.ids.append(self.pool.intern(value))
        else:
            self.exceptions.values[len(self.ids)] = value
            self.ids.append(-1)

    def get(self, row: int) -> Any:
        """The exact value ``append`` was fed for ``row``."""
        if self.exceptions and row in self.exceptions.values:
            return self.exceptions.values[row]
        pooled = self.ids[row]
        return None if pooled < 0 else self.pool.strings[pooled]

    def __len__(self) -> int:
        return len(self.ids)

    def __iter__(self) -> Iterator[Any]:
        strings = self.pool.strings
        if not self.exceptions:
            for pooled in self.ids:
                yield None if pooled < 0 else strings[pooled]
        else:
            for row in range(len(self.ids)):
                yield self.get(row)

    def unique(self) -> set[str]:
        """Distinct non-null string values (O(pool), not O(rows))."""
        present = {s for s in self.pool.strings}
        present.update(v for v in self.exceptions.values.values()
                       if isinstance(v, str))
        return present

    def memoryview(self) -> memoryview:
        """Zero-copy view of the packed pool-id buffer."""
        return memoryview(self.ids)

    def segments(self) -> list[tuple[str, bytes]]:
        """``(name, bytes)`` pairs for the on-disk format."""
        return ([("ids", self.ids.tobytes())]
                + self.pool.segments()
                + [("exceptions", self.exceptions.segment())])

    @classmethod
    def from_segments(cls, segments: dict[str, bytes]) -> "StringColumn":
        """Rebuild a column from its on-disk segments."""
        column = cls()
        column.ids.frombytes(segments["ids"])
        column.pool = StringPool.from_segments(segments)
        column.exceptions.load(segments["exceptions"])
        column.null_count = (sum(1 for i in column.ids if i < 0)
                             - len(column.exceptions.values))
        return column


class JsonColumn(StringColumn):
    """Arbitrary JSON cells, stored as interned compact JSON text.

    Reuses the pooled-string machinery; ``append``/``get`` translate
    between live objects and their canonical text.  Fidelity: compact
    ``json.dumps`` without key sorting round-trips any value the
    payload serializers accept to an equal object.
    """

    KIND = "json"
    __slots__ = ()

    def append(self, value: Any) -> None:
        """Append one JSON cell (interned as canonical compact text)."""
        if value is None:
            self.ids.append(-1)
            self.null_count += 1
        else:
            self.ids.append(self.pool.intern(_compact_json(value)))

    def get(self, row: int) -> Any:
        """The cell at ``row``, reloaded to an equal live object."""
        pooled = self.ids[row]
        return None if pooled < 0 else json.loads(
            self.pool.strings[pooled])

    def __iter__(self) -> Iterator[Any]:
        strings = self.pool.strings
        for pooled in self.ids:
            yield None if pooled < 0 else json.loads(strings[pooled])

    def unique(self) -> set[str]:  # pragma: no cover - not categorical
        raise TypeError("json columns have no string universe")


class FloatColumn:
    """``array('d')`` column with a null mask and verbatim exceptions."""

    KIND = "f64"
    __slots__ = ("values", "mask", "exceptions", "null_count")

    def __init__(self) -> None:
        self.values = array("d")
        self.mask = array("B")  # 1 = null (or exception) at this row
        self.exceptions = _Exceptions()
        self.null_count = 0

    def append(self, value: Any) -> None:
        """Append one cell; non-floats go verbatim to the side table."""
        if isinstance(value, float):
            # Covers numpy.float64 (a float subclass): packing to a C
            # double is exact and JSON-invisible.
            self.values.append(value)
            self.mask.append(0)
            return
        if value is not None:
            # int (renders without the decimal point) or any exotic
            # type: keep the original object verbatim.
            self.exceptions.values[len(self.values)] = value
        else:
            self.null_count += 1
        self.values.append(0.0)
        self.mask.append(1)

    def get(self, row: int) -> Any:
        """The exact value ``append`` was fed for ``row``."""
        if not self.mask[row]:
            return self.values[row]
        return self.exceptions.values.get(row)

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[Any]:
        if not self.null_count and not self.exceptions:
            yield from self.values
        else:
            for row in range(len(self.values)):
                yield self.get(row)

    def memoryview(self) -> memoryview:
        """Zero-copy view of the packed float64 buffer."""
        return memoryview(self.values)

    def segments(self) -> list[tuple[str, bytes]]:
        """``(name, bytes)`` pairs for the on-disk format."""
        return [("values", self.values.tobytes()),
                ("mask", self.mask.tobytes()),
                ("exceptions", self.exceptions.segment())]

    @classmethod
    def from_segments(cls, segments: dict[str, bytes]) -> "FloatColumn":
        """Rebuild a column from its on-disk segments."""
        column = cls()
        column.values.frombytes(segments["values"])
        column.mask.frombytes(segments["mask"])
        column.exceptions.load(segments["exceptions"])
        column.null_count = (sum(column.mask)
                             - len(column.exceptions.values))
        return column


class IntColumn:
    """``array('q')`` column with a null mask and verbatim exceptions."""

    KIND = "i64"
    __slots__ = ("values", "mask", "exceptions", "null_count")

    def __init__(self) -> None:
        self.values = array("q")
        self.mask = array("B")
        self.exceptions = _Exceptions()
        self.null_count = 0

    def append(self, value: Any) -> None:
        """Append one cell; bools and huge ints go verbatim."""
        # bool is an int subclass but renders true/false: exception.
        if isinstance(value, int) and not isinstance(value, bool):
            try:
                self.values.append(value)
                self.mask.append(0)
                return
            except OverflowError:  # > 64-bit: keep verbatim
                pass
        if value is not None:
            self.exceptions.values[len(self.values)] = value
        else:
            self.null_count += 1
        self.values.append(0)
        self.mask.append(1)

    def get(self, row: int) -> Any:
        """The exact value ``append`` was fed for ``row``."""
        if not self.mask[row]:
            return self.values[row]
        return self.exceptions.values.get(row)

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[Any]:
        if not self.null_count and not self.exceptions:
            yield from self.values
        else:
            for row in range(len(self.values)):
                yield self.get(row)

    def memoryview(self) -> memoryview:
        """Zero-copy view of the packed int64 buffer."""
        return memoryview(self.values)

    def segments(self) -> list[tuple[str, bytes]]:
        """``(name, bytes)`` pairs for the on-disk format."""
        return [("values", self.values.tobytes()),
                ("mask", self.mask.tobytes()),
                ("exceptions", self.exceptions.segment())]

    @classmethod
    def from_segments(cls, segments: dict[str, bytes]) -> "IntColumn":
        """Rebuild a column from its on-disk segments."""
        column = cls()
        column.values.frombytes(segments["values"])
        column.mask.frombytes(segments["mask"])
        column.exceptions.load(segments["exceptions"])
        column.null_count = (sum(column.mask)
                             - len(column.exceptions.values))
        return column


class BoolColumn:
    """``array('b')`` column: 0/1 values, ``-1`` nulls, exceptions."""

    KIND = "bool"
    __slots__ = ("values", "exceptions")

    def __init__(self) -> None:
        self.values = array("b")
        self.exceptions = _Exceptions()

    def append(self, value: Any) -> None:
        """Append one cell; non-bool truthy values go verbatim."""
        if isinstance(value, bool):
            self.values.append(1 if value else 0)
        elif value is None:
            self.values.append(-1)
        else:
            # 0/1 ints, numpy.bool_, ...: render differently — verbatim.
            self.exceptions.values[len(self.values)] = value
            self.values.append(-1)

    def get(self, row: int) -> Any:
        """The exact value ``append`` was fed for ``row``."""
        if self.exceptions and row in self.exceptions.values:
            return self.exceptions.values[row]
        packed = self.values[row]
        return None if packed < 0 else bool(packed)

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[Any]:
        if not self.exceptions:
            for packed in self.values:
                yield None if packed < 0 else bool(packed)
        else:
            for row in range(len(self.values)):
                yield self.get(row)

    def memoryview(self) -> memoryview:
        """Zero-copy view of the packed byte buffer."""
        return memoryview(self.values)

    def segments(self) -> list[tuple[str, bytes]]:
        """``(name, bytes)`` pairs for the on-disk format."""
        return [("values", self.values.tobytes()),
                ("exceptions", self.exceptions.segment())]

    @classmethod
    def from_segments(cls, segments: dict[str, bytes]) -> "BoolColumn":
        """Rebuild a column from its on-disk segments."""
        column = cls()
        column.values.frombytes(segments["values"])
        column.exceptions.load(segments["exceptions"])
        return column


#: Kind name -> column class.
COLUMN_TYPES = {
    "str": StringColumn,
    "f64": FloatColumn,
    "i64": IntColumn,
    "bool": BoolColumn,
    "json": JsonColumn,
}


def make_column(kind: str):
    """Instantiate a fresh column of one schema kind."""
    try:
        return COLUMN_TYPES[kind]()
    except KeyError:
        raise ValueError(
            f"unknown column kind {kind!r}; "
            f"expected one of {COLUMN_KINDS}") from None
