"""Versioned per-table schemas for the columnar corpus.

Each table schema lists its columns **in the exact key order the
record's ``to_dict`` emits them** — payload reconstruction walks the
schema, so this ordering is what keeps the columnar ``to_json`` bytes
identical to the dict path's.  Bumping a record's dict shape means
bumping that table's ``version`` so old binary files are rejected
loudly instead of decoded wrong.
"""

from __future__ import annotations

from dataclasses import dataclass

from .columns import COLUMN_KINDS

#: Container format revision (the binary envelope in ``io.py``).
STORAGE_FORMAT = 1


@dataclass(frozen=True)
class ColumnSpec:
    """One field of one table: name + packed column kind."""

    name: str
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in COLUMN_KINDS:
            raise ValueError(
                f"column {self.name!r} has unknown kind "
                f"{self.kind!r}; expected one of {COLUMN_KINDS}")


@dataclass(frozen=True)
class TableSchema:
    """Ordered column layout of one corpus table."""

    name: str
    version: int
    columns: tuple[ColumnSpec, ...]

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(spec.name for spec in self.columns)


#: Mirrors ``DisengagementRecord.to_dict`` key order exactly.
DISENGAGEMENT_SCHEMA = TableSchema(
    name="disengagements",
    version=1,
    columns=(
        ColumnSpec("manufacturer", "str"),
        ColumnSpec("month", "str"),
        ColumnSpec("event_date", "str"),      # ISO date text
        ColumnSpec("time_of_day", "json"),    # [h, m, s] or null
        ColumnSpec("vehicle_id", "str"),
        ColumnSpec("modality", "str"),        # Modality.value
        ColumnSpec("road_type", "str"),
        ColumnSpec("weather", "str"),
        ColumnSpec("reaction_time_s", "f64"),
        ColumnSpec("description", "str"),
        ColumnSpec("tag", "str"),             # FaultTag.value
        ColumnSpec("category", "str"),        # FailureCategory.value
        ColumnSpec("truth_tag", "str"),
        ColumnSpec("source_document", "str"),
        ColumnSpec("source_line", "i64"),
    ),
)

#: Mirrors ``AccidentRecord.to_dict`` key order exactly.
ACCIDENT_SCHEMA = TableSchema(
    name="accidents",
    version=1,
    columns=(
        ColumnSpec("manufacturer", "str"),
        ColumnSpec("event_date", "str"),
        ColumnSpec("month", "str"),
        ColumnSpec("location", "str"),
        ColumnSpec("autonomous_at_collision", "bool"),
        ColumnSpec("disengaged_before_collision", "bool"),
        ColumnSpec("av_speed_mph", "f64"),
        ColumnSpec("other_speed_mph", "f64"),
        ColumnSpec("collision_type", "str"),
        ColumnSpec("injuries", "bool"),
        ColumnSpec("redacted", "bool"),
        ColumnSpec("vehicle_id", "str"),
        ColumnSpec("description", "str"),
        ColumnSpec("source_document", "str"),
    ),
)

#: Mirrors ``MonthlyMileage.to_dict`` key order exactly.
MILEAGE_SCHEMA = TableSchema(
    name="mileage",
    version=1,
    columns=(
        ColumnSpec("manufacturer", "str"),
        ColumnSpec("month", "str"),
        ColumnSpec("miles", "f64"),
        ColumnSpec("vehicle_id", "str"),
    ),
)

#: Mirrors ``QuarantineEntry.to_dict`` key order exactly.
QUARANTINE_SCHEMA = TableSchema(
    name="quarantine",
    version=1,
    columns=(
        ColumnSpec("unit_id", "str"),
        ColumnSpec("stage", "str"),
        ColumnSpec("error_type", "str"),
        ColumnSpec("message", "str"),
        ColumnSpec("traceback", "str"),
    ),
)

#: Table name -> schema, in payload section order.
TABLE_SCHEMAS = {
    schema.name: schema
    for schema in (DISENGAGEMENT_SCHEMA, ACCIDENT_SCHEMA,
                   MILEAGE_SCHEMA, QUARANTINE_SCHEMA)
}
