"""One pre-fork worker: an isolated engine behind the shared port.

Each worker process owns the full single-process serving stack — its
own immutable index (monolithic or sharded), query engine, result
cache, snapshot manager, and admission control — so nothing is
shared across workers except the listening port and the generation
file.  Two cross-process concerns live here:

**Metrics aggregation.**  Every worker flushes its registry's
:meth:`~repro.obs.metrics.MetricsRegistry.dump` to
``<metrics_dir>/worker-<id>.pkl`` (atomic temp + ``os.replace``) on a
short interval and at shutdown.  Whichever worker the kernel hands a
``GET /metrics`` merges every *sibling's* latest dump plus its own
**live** registry into a fresh scratch registry via the additive
:meth:`~repro.obs.metrics.MetricsRegistry.merge`, so one scrape shows
fleet-wide totals no matter which worker answered.  Each dump is a
complete per-worker snapshot merged exactly once per scrape — never
double-counted.  The per-worker ``repro_serving_worker_up{worker=N}``
gauge makes the aggregation provable: a scrape that reflects all
workers carries one series per worker id.

**Hot swap.**  A :class:`~repro.serving.generation.GenerationWatcher`
polls the generation file; a new generation is loaded through the
worker's own :class:`~repro.query.snapshot.SnapshotManager` (so a
corrupt candidate is quarantined per-worker and the last-good
snapshot keeps serving).  Every response is still built from exactly
one captured snapshot.
"""

from __future__ import annotations

import os
import pickle
import signal
import socket
import threading
from dataclasses import dataclass, field
from pathlib import Path

from ..obs.metrics import (
    MetricsRegistry,
    SERVING_WORKER_GENERATION,
    SERVING_WORKER_UP,
)
from ..pipeline.store import FailureDatabase
from ..query.engine import DEFAULT_SHARDS
from ..query.server import QueryServer
from ..query.snapshot import SnapshotManager
from .generation import GenerationFile, GenerationWatcher


@dataclass(frozen=True)
class WorkerConfig:
    """Everything one worker needs (picklable — crosses the fork)."""

    worker_id: int
    host: str
    port: int
    generation_path: str
    metrics_dir: str
    cache_size: int = 256
    max_inflight: int = 64
    deadline_s: float = 10.0
    drain_timeout_s: float = 5.0
    index_backend: str = "monolithic"
    shards: int = DEFAULT_SHARDS
    verbose: bool = False
    #: Generation-file poll cadence.
    poll_interval_s: float = 0.2
    #: Metrics-dump flush cadence.
    flush_interval_s: float = 0.5
    #: Bind an own SO_REUSEPORT socket (the normal path); ``False``
    #: means a listening socket is inherited from the master instead.
    reuse_port: bool = True


def _dump_path(metrics_dir: str | Path, worker_id: int) -> Path:
    return Path(metrics_dir) / f"worker-{worker_id}.pkl"


def flush_metrics(registry: MetricsRegistry, metrics_dir: str | Path,
                  worker_id: int) -> None:
    """Atomically publish this worker's full registry dump."""
    target = _dump_path(metrics_dir, worker_id)
    tmp = target.with_name(target.name + ".tmp")
    with open(tmp, "wb") as handle:
        pickle.dump(registry.dump(), handle)
    os.replace(tmp, target)


def aggregate_metrics(registry: MetricsRegistry,
                      metrics_dir: str | Path,
                      own_worker_id: int | None = None) -> str:
    """Merge every sibling dump + the live registry into one text.

    The scratch registry is rebuilt per scrape: each sibling's dump
    is a complete snapshot folded in exactly once (so counters are
    fleet totals, not double counts), and the answering worker's
    *live* registry is merged last so its own numbers are fresher
    than its last flush.  A torn or vanishing dump file is skipped —
    the scrape degrades to the remaining workers rather than failing.
    """
    scratch = MetricsRegistry()
    own_name = (None if own_worker_id is None
                else _dump_path(metrics_dir, own_worker_id).name)
    for path in sorted(Path(metrics_dir).glob("worker-*.pkl")):
        if path.name == own_name:
            continue
        try:
            with open(path, "rb") as handle:
                scratch.merge(pickle.load(handle))
        except Exception:
            continue  # torn write or sibling mid-replace
    scratch.merge(registry.dump())
    return scratch.render_prometheus()


@dataclass
class _WorkerRuntime:
    """The assembled worker (kept for tests; ``run_worker`` drives it)."""

    config: WorkerConfig
    server: QueryServer
    registry: MetricsRegistry
    watcher: GenerationWatcher
    stop: threading.Event = field(default_factory=threading.Event)


def build_worker(config: WorkerConfig,
                 listen_socket: socket.socket | None = None,
                 ) -> _WorkerRuntime:
    """Assemble (but do not run) one worker's serving stack."""
    generation_file = GenerationFile(config.generation_path)
    generation = generation_file.wait()
    if generation is None:
        raise RuntimeError(
            f"no readable generation file at "
            f"{config.generation_path!r}")
    db = FailureDatabase.load(generation.path)
    registry = MetricsRegistry()
    manager = SnapshotManager(
        db, source=generation.path, cache_size=config.cache_size,
        index_backend=config.index_backend, shards=config.shards,
        registry=registry)
    server = QueryServer(
        manager, config.host, config.port,
        registry=registry, verbose=config.verbose,
        max_inflight=config.max_inflight,
        deadline_s=config.deadline_s,
        drain_timeout_s=config.drain_timeout_s,
        reuse_port=config.reuse_port and listen_socket is None,
        listen_socket=listen_socket)

    worker_label = str(config.worker_id)
    registry.gauge(
        SERVING_WORKER_UP,
        "Pre-fork worker identity (1 while the worker serves).",
        ("worker",)).labels(worker_label).set(1)
    generation_gauge = registry.gauge(
        SERVING_WORKER_GENERATION,
        "Generation this worker currently serves.", ("worker",))
    generation_gauge.labels(worker_label).set(generation.generation)

    server.metrics_renderer = lambda live: aggregate_metrics(
        live, config.metrics_dir, config.worker_id)

    def on_change(new_generation) -> None:
        manager.load(new_generation.path)
        generation_gauge.labels(worker_label).set(
            new_generation.generation)

    watcher = GenerationWatcher(
        generation_file, on_change,
        interval_s=config.poll_interval_s,
        start_generation=generation.generation)
    return _WorkerRuntime(config=config, server=server,
                          registry=registry, watcher=watcher)


def run_worker(config: WorkerConfig,
               listen_socket: socket.socket | None = None) -> int:
    """The worker process main: serve until SIGTERM/SIGINT, drain,
    flush, exit 0.  (Runs as the main thread of a forked child.)"""
    runtime = build_worker(config, listen_socket=listen_socket)
    stop = runtime.stop

    def handle_signal(signum, frame) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, handle_signal)
    signal.signal(signal.SIGINT, handle_signal)

    def flush_loop() -> None:
        while not stop.is_set():
            try:
                flush_metrics(runtime.registry, config.metrics_dir,
                              config.worker_id)
            except OSError:
                pass  # metrics dir vanished; keep serving
            stop.wait(config.flush_interval_s)

    flusher = threading.Thread(target=flush_loop,
                               name="repro-metrics-flush",
                               daemon=True)
    runtime.server.start()
    runtime.watcher.start()
    flusher.start()
    try:
        stop.wait()
    finally:
        runtime.watcher.stop()
        runtime.server.shutdown()  # graceful drain
        flusher.join(timeout=5.0)
        try:
            flush_metrics(runtime.registry, config.metrics_dir,
                          config.worker_id)
        except OSError:
            pass
    return 0
