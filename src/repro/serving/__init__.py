"""Scale-out serving: a pre-fork multi-process HTTP front end.

One :class:`~repro.query.server.QueryServer` is GIL-bound: a single
process can keep exactly one core busy no matter how many handler
threads it runs.  This package scales the same API surface across
cores without giving up any single-process guarantee:

* :mod:`~repro.serving.prefork` — :class:`PreforkServer`: the master.
  Reserves the port (``SO_REUSEPORT`` where available, an inherited
  listening socket otherwise), forks ``N`` workers, supervises them
  (crash-respawn), and drains them gracefully on shutdown.
* :mod:`~repro.serving.worker` — :func:`run_worker`: one worker
  process.  Holds its own immutable index/engine behind a
  :class:`~repro.query.snapshot.SnapshotManager`, serves the ``/v1``
  API, flushes its :class:`~repro.obs.metrics.MetricsRegistry` dump
  to disk, and aggregates every sibling's dump into one ``/metrics``
  exposition at scrape time.
* :mod:`~repro.serving.generation` — :class:`GenerationFile` +
  :class:`GenerationWatcher`: hot-swap coordination.  The master
  publishes ``{generation, path}`` atomically; each worker watches
  the file and loads the new database through its snapshot manager,
  so every response still comes from exactly one generation and a
  corrupt candidate is quarantined per-worker, last-good keeps
  serving.

Consistency across processes is *eventual by generation*: during a
swap, different workers may briefly serve adjacent generations, but
any single response is built from exactly one — the same per-request
snapshot capture the threaded server already guarantees, plus
fingerprint-scoped page cursors that refuse to span generations.

Quickstart::

    from repro.serving import PreforkServer

    with PreforkServer("db.json", port=0, processes=4) as server:
        server.wait_ready()
        ...  # http://127.0.0.1:<port>/v1/query
        server.publish("db-next.json")  # hot-swap every worker
"""

from .generation import Generation, GenerationFile, GenerationWatcher
from .prefork import PreforkServer, serve_prefork
from .worker import WorkerConfig, aggregate_metrics, run_worker

__all__ = [
    "Generation",
    "GenerationFile",
    "GenerationWatcher",
    "PreforkServer",
    "WorkerConfig",
    "aggregate_metrics",
    "run_worker",
    "serve_prefork",
]
