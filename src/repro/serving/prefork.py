"""The pre-fork master: port ownership, supervision, coordination.

Layout (one master, N workers, one shared port)::

    PreforkServer (master — owns nothing on the request path)
      ├─ port reservation        SO_REUSEPORT bound-but-not-listening
      │                          (or a shared listening socket where
      │                          SO_REUSEPORT is unavailable)
      ├─ generation file         the hot-swap pointer (publish())
      ├─ worker 0..N-1           forked; each a full QueryServer
      └─ supervisor thread       respawns crashed workers

**Port handling.**  Where ``SO_REUSEPORT`` exists (Linux, BSDs), the
master binds a reservation socket but never listens on it — TCP only
routes SYNs to *listening* sockets, so the reservation is inert; it
exists to resolve ``port=0`` to a concrete port once and to keep that
port stable across worker respawns.  Each worker then binds its own
``SO_REUSEPORT`` socket and the kernel load-balances accepts.
Elsewhere, the master binds + listens once and forked workers accept
from the inherited socket.

**Supervision.**  A worker that dies for any reason while the server
is running is respawned under the same worker id (same metrics dump
slot, same generation file), and the respawn catches up to the
current generation at boot.  Shutdown SIGTERMs every worker; each
drains in-flight requests (the PR 6 graceful-drain path) before
exiting, and stragglers are killed after the drain timeout.

**Hot swap.**  :meth:`PreforkServer.publish` atomically bumps the
generation file; every worker's watcher loads the new database
through its own snapshot manager.  During the propagation window
different workers may serve adjacent generations, but every single
response is built from exactly one — and each carries its
fingerprint, so clients (and the swap-under-load tests) can prove it.
"""

from __future__ import annotations

import json
import multiprocessing
import shutil
import signal
import socket
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

from ..query.engine import DEFAULT_SHARDS
from .generation import GenerationFile
from .worker import WorkerConfig, run_worker

#: Listen backlog for the shared-socket fallback.
_BACKLOG = 128


def _worker_entry(config: WorkerConfig, listen_socket) -> None:
    """Child-process entry point (module-level: picklable by name)."""
    sys.exit(run_worker(config, listen_socket=listen_socket))


def reuse_port_supported() -> bool:
    """Whether the kernel offers per-worker SO_REUSEPORT sockets."""
    return hasattr(socket, "SO_REUSEPORT")


class PreforkServer:
    """Master for ``repro serve --processes N``.

    Usable as a context manager (the test/embedding mode)::

        with PreforkServer("db.json", port=0, processes=2) as server:
            server.wait_ready()
            urllib.request.urlopen(server.url + "/v1/healthz")
    """

    def __init__(self, db_path: str | Path,
                 host: str = "127.0.0.1", port: int = 8350, *,
                 processes: int = 2,
                 run_dir: str | Path | None = None,
                 cache_size: int = 256,
                 max_inflight: int = 64,
                 deadline_s: float = 10.0,
                 drain_timeout_s: float = 5.0,
                 index_backend: str = "monolithic",
                 shards: int = DEFAULT_SHARDS,
                 verbose: bool = False,
                 poll_interval_s: float = 0.2,
                 flush_interval_s: float = 0.5) -> None:
        if processes < 1:
            raise ValueError(
                f"processes must be >= 1, got {processes}")
        self.db_path = str(db_path)
        self.requested_host = host
        self.requested_port = port
        self.processes = processes
        self._cache_size = cache_size
        self._max_inflight = max_inflight
        self._deadline_s = deadline_s
        self._drain_timeout_s = drain_timeout_s
        self._index_backend = index_backend
        self._shards = shards
        self._verbose = verbose
        self._poll_interval_s = poll_interval_s
        self._flush_interval_s = flush_interval_s
        self._owns_run_dir = run_dir is None
        self.run_dir = Path(run_dir) if run_dir is not None else None
        self._reservation: socket.socket | None = None
        self._listen_socket: socket.socket | None = None
        self._workers: list[multiprocessing.process.BaseProcess | None]
        self._workers = [None] * processes
        self._supervisor: threading.Thread | None = None
        self._stopping = threading.Event()
        self._restarts = 0
        self._started = False
        self._host = host
        self._port = port
        self.generation_file: GenerationFile | None = None

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        """The resolved port (concrete also when constructed with 0)."""
        return self._port

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self._port}"

    @property
    def restarts(self) -> int:
        """Workers respawned after unexpected deaths."""
        return self._restarts

    @property
    def generation(self) -> int:
        """The currently published generation."""
        current = (self.generation_file.read()
                   if self.generation_file else None)
        return current.generation if current else 0

    def worker_pids(self) -> list[int | None]:
        """Live worker pids by slot (``None`` = currently down)."""
        return [proc.pid if proc is not None and proc.is_alive()
                else None for proc in self._workers]

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def start(self) -> "PreforkServer":
        """Reserve the port, publish generation 1, fork the
        workers, and begin supervising.  Idempotent."""
        if self._started:
            return self
        self._started = True
        if self.run_dir is None:
            self.run_dir = Path(tempfile.mkdtemp(
                prefix="repro-serving-"))
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self._metrics_dir = self.run_dir / "metrics"
        self._metrics_dir.mkdir(exist_ok=True)
        self.generation_file = GenerationFile(
            self.run_dir / "generation.json")
        self.generation_file.publish(self.db_path)
        self._reserve_port()
        context = multiprocessing.get_context("fork")
        self._context = context
        for worker_id in range(self.processes):
            self._workers[worker_id] = self._spawn(worker_id)
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-prefork-supervisor",
            daemon=True)
        self._supervisor.start()
        return self

    def _reserve_port(self) -> None:
        if reuse_port_supported():
            # Bound but never listening: resolves port=0 once and
            # pins the number for every (re)spawned worker.  TCP only
            # routes SYNs to listening sockets, so this socket never
            # steals a connection.
            reservation = socket.socket(socket.AF_INET,
                                        socket.SOCK_STREAM)
            reservation.setsockopt(socket.SOL_SOCKET,
                                   socket.SO_REUSEPORT, 1)
            reservation.bind((self.requested_host,
                              self.requested_port))
            self._reservation = reservation
            self._host, self._port = reservation.getsockname()[:2]
        else:
            # Fallback: one shared listening socket, inherited by
            # every forked worker.
            listener = socket.socket(socket.AF_INET,
                                     socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET,
                                socket.SO_REUSEADDR, 1)
            listener.bind((self.requested_host, self.requested_port))
            listener.listen(_BACKLOG)
            self._listen_socket = listener
            self._host, self._port = listener.getsockname()[:2]

    def _worker_config(self, worker_id: int) -> WorkerConfig:
        return WorkerConfig(
            worker_id=worker_id,
            host=self._host,
            port=self._port,
            generation_path=str(self.generation_file.path),
            metrics_dir=str(self._metrics_dir),
            cache_size=self._cache_size,
            max_inflight=self._max_inflight,
            deadline_s=self._deadline_s,
            drain_timeout_s=self._drain_timeout_s,
            index_backend=self._index_backend,
            shards=self._shards,
            verbose=self._verbose,
            poll_interval_s=self._poll_interval_s,
            flush_interval_s=self._flush_interval_s,
            reuse_port=self._listen_socket is None)

    def _spawn(self, worker_id: int):
        process = self._context.Process(
            target=_worker_entry,
            args=(self._worker_config(worker_id),
                  self._listen_socket),
            name=f"repro-serving-worker-{worker_id}",
            daemon=False)
        process.start()
        return process

    def _supervise(self) -> None:
        while not self._stopping.is_set():
            for worker_id, process in enumerate(self._workers):
                if process is None or process.is_alive():
                    continue
                process.join()
                if self._stopping.is_set():
                    break
                self._restarts += 1
                self._workers[worker_id] = self._spawn(worker_id)
            self._stopping.wait(0.1)

    def wait_ready(self, timeout: float = 30.0) -> bool:
        """Block until the port answers ``/v1/healthz`` with 200."""
        deadline = time.monotonic() + timeout
        url = self.url + "/v1/healthz"
        while time.monotonic() < deadline:
            try:
                with urllib.request.urlopen(url, timeout=2) as res:
                    if res.status == 200:
                        return True
            except (urllib.error.URLError, OSError):
                pass
            time.sleep(0.05)
        return False

    def publish(self, db_path: str | Path) -> int:
        """Hot-swap: point every worker at a new database file.

        Returns the published generation number.  Workers converge
        within their poll interval; a worker that finds the candidate
        corrupt quarantines it locally and keeps serving last-good.
        """
        return self.generation_file.publish(db_path).generation

    def scrape_metrics(self, timeout: float = 10.0) -> str:
        """One aggregated ``/metrics`` scrape (whichever worker
        answers merges every sibling's dump)."""
        with urllib.request.urlopen(self.url + "/metrics",
                                    timeout=timeout) as res:
            return res.read().decode("utf-8")

    def shutdown(self) -> None:
        """SIGTERM every worker, wait for graceful drains, clean up."""
        if not self._started:
            return
        self._stopping.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)
            self._supervisor = None
        for process in self._workers:
            if process is not None and process.is_alive():
                process.terminate()  # SIGTERM -> graceful drain
        deadline = time.monotonic() + self._drain_timeout_s + 5.0
        for process in self._workers:
            if process is None:
                continue
            remaining = max(deadline - time.monotonic(), 0.1)
            process.join(timeout=remaining)
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
        self._workers = [None] * self.processes
        if self._reservation is not None:
            self._reservation.close()
            self._reservation = None
        if self._listen_socket is not None:
            self._listen_socket.close()
            self._listen_socket = None
        if self._owns_run_dir and self.run_dir is not None:
            shutil.rmtree(self.run_dir, ignore_errors=True)
        self._started = False

    def __enter__(self) -> "PreforkServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def serve_prefork(db_path: str | Path, host: str = "127.0.0.1",
                  port: int = 8350, *, processes: int = 2,
                  run_dir: str | Path | None = None,
                  cache_size: int = 256,
                  max_inflight: int = 64,
                  deadline_s: float = 10.0,
                  index_backend: str = "monolithic",
                  shards: int = DEFAULT_SHARDS,
                  verbose: bool = True,
                  watch: str | Path | None = None,
                  watch_interval_s: float = 2.0) -> None:
    """Blocking entry point (``repro serve --processes N``).

    With ``watch``, the *master* polls the directory for database
    drops and publishes each one through the generation file — the
    workers do the loading (and per-worker quarantine of corrupt
    candidates).
    """
    from ..query.snapshot import DirectoryWatcher

    server = PreforkServer(
        db_path, host, port, processes=processes, run_dir=run_dir,
        cache_size=cache_size, max_inflight=max_inflight,
        deadline_s=deadline_s, index_backend=index_backend,
        shards=shards, verbose=verbose)
    server.start()
    if verbose:
        mode = ("SO_REUSEPORT" if reuse_port_supported()
                else "shared listening socket")
        print(json.dumps({
            "serving": server.url, "processes": processes,
            "port_mode": mode, "index_backend": index_backend,
        }), file=sys.stderr)
    watcher = DirectoryWatcher(watch) if watch is not None else None
    stop = threading.Event()
    try:
        # SIGTERM (systemd, CI `kill`) drains like Ctrl-C instead of
        # orphaning the workers.
        signal.signal(signal.SIGTERM, lambda *_: stop.set())
    except ValueError:
        pass  # not the main thread (embedded use); Ctrl-C still works
    try:
        while not stop.is_set():
            if watcher is not None:
                for path in watcher.poll():
                    server.publish(path)
                stop.wait(watch_interval_s)
            else:
                stop.wait(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
