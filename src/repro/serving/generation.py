"""Generation-file coordination for the pre-fork server.

The master publishes "serve this database file as generation N" by
atomically replacing one small JSON file; every worker polls it and
hot-swaps through its own :class:`~repro.query.snapshot.SnapshotManager`.
The file is the *only* cross-process swap channel — no pipes, no
locks, no shared memory — so a worker that died and was respawned
catches up by simply reading the current file at boot.

Atomicity: :meth:`GenerationFile.publish` writes a temp file in the
same directory and ``os.replace``\\ s it over the target, so a reader
sees either the old pointer or the new one, never a torn write.  A
malformed file (only possible if something other than ``publish``
wrote it) reads as ``None`` and is ignored by the watcher — the
worker keeps serving its last-good snapshot, mirroring the
quarantine semantics of the snapshot manager itself.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable


@dataclass(frozen=True)
class Generation:
    """One published serving generation."""

    #: Monotonic counter (1 = the generation published at boot).
    generation: int
    #: Database file every worker should serve.
    path: str
    #: ``time.time()`` at publish.
    published_at: float

    def to_dict(self) -> dict[str, Any]:
        """The JSON body written to the generation file."""
        return {
            "generation": self.generation,
            "path": self.path,
            "published_at": self.published_at,
        }


class GenerationFile:
    """The atomically-replaced JSON pointer file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def read(self) -> Generation | None:
        """The current generation, or ``None`` (absent / malformed)."""
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
            return Generation(
                generation=int(data["generation"]),
                path=str(data["path"]),
                published_at=float(data["published_at"]))
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def publish(self, db_path: str | Path) -> Generation:
        """Atomically point every watcher at ``db_path``.

        The generation counter continues from whatever the file holds
        (1 when absent), so publishes survive master restarts.
        """
        current = self.read()
        generation = Generation(
            generation=(current.generation + 1) if current else 1,
            path=str(db_path),
            published_at=time.time())
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(json.dumps(generation.to_dict()),
                       encoding="utf-8")
        os.replace(tmp, self.path)
        return generation

    def wait(self, timeout: float = 5.0,
             interval_s: float = 0.02) -> Generation | None:
        """Block until the file reads cleanly (worker boot path)."""
        deadline = time.monotonic() + timeout
        while True:
            generation = self.read()
            if generation is not None:
                return generation
            if time.monotonic() >= deadline:
                return None
            time.sleep(interval_s)


class GenerationWatcher:
    """A polling thread that fires a callback on new generations.

    The callback receives the new :class:`Generation`; exceptions it
    raises are swallowed after being remembered in :attr:`last_error`
    (a failed swap must never kill the watcher — the next publish
    gets a fresh chance, exactly like the directory watcher's
    quarantine behavior).
    """

    def __init__(self, file: GenerationFile,
                 on_change: Callable[[Generation], None], *,
                 interval_s: float = 0.2,
                 start_generation: int = 0) -> None:
        self._file = file
        self._on_change = on_change
        self._interval_s = interval_s
        self._seen = start_generation
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.last_error: str | None = None

    @property
    def seen_generation(self) -> int:
        """Highest generation the callback has been offered."""
        return self._seen

    def poll_once(self) -> bool:
        """One poll step; returns whether the callback fired."""
        generation = self._file.read()
        if generation is None or generation.generation <= self._seen:
            return False
        self._seen = generation.generation
        try:
            self._on_change(generation)
        except Exception as exc:
            self.last_error = repr(exc)
        return True

    def start(self) -> "GenerationWatcher":
        """Poll on a background thread until :meth:`stop`."""
        def loop() -> None:
            while not self._stop.is_set():
                self.poll_once()
                self._stop.wait(self._interval_s)

        self._thread = threading.Thread(
            target=loop, name="repro-generation-watch", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop and join the background polling thread."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
