"""Corpus disk I/O: write a raw corpus to a directory tree, read it
back.

The on-disk layout mirrors how the real DMV releases arrive — one text
file per report document — plus a JSON manifest carrying document
metadata and the out-of-band ground truth (in a separate file, so the
document text alone is exactly what a real pipeline would see)::

    corpus/
      manifest.json
      truth.json
      documents/
        Waymo-2015-2016-disengagements.txt
        Waymo-accident-000.txt
        ...
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import SynthesisError
from ..parsing.records import (
    AccidentRecord,
    DisengagementRecord,
    MonthlyMileage,
)
from .dataset import SyntheticCorpus
from .reports import RawDocument

MANIFEST_NAME = "manifest.json"
TRUTH_NAME = "truth.json"
DOCUMENTS_DIR = "documents"


def write_corpus(corpus: SyntheticCorpus, directory: str | Path) -> Path:
    """Write ``corpus`` under ``directory`` (created if missing)."""
    root = Path(directory)
    documents_dir = root / DOCUMENTS_DIR
    documents_dir.mkdir(parents=True, exist_ok=True)

    manifest = {"seed": corpus.seed, "documents": []}
    truth: dict[str, dict] = {}
    for document in corpus.documents:
        file_name = f"{document.document_id}.txt"
        (documents_dir / file_name).write_text(
            document.text + "\n", encoding="utf-8")
        manifest["documents"].append({
            "document_id": document.document_id,
            "manufacturer": document.manufacturer,
            "kind": document.kind,
            "file": file_name,
        })
        truth[document.document_id] = {
            "disengagements": [r.to_dict()
                               for r in document.truth_disengagements],
            "mileage": [m.to_dict() for m in document.truth_mileage],
            "accidents": [a.to_dict()
                          for a in document.truth_accidents],
        }
    (root / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2), encoding="utf-8")
    (root / TRUTH_NAME).write_text(json.dumps(truth), encoding="utf-8")
    return root


def read_corpus(directory: str | Path,
                with_truth: bool = True) -> SyntheticCorpus:
    """Read a corpus previously written with :func:`write_corpus`.

    ``with_truth=False`` drops the ground-truth sidecar — the corpus
    then looks exactly like a real (labelless) DMV release.
    """
    root = Path(directory)
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.exists():
        raise SynthesisError(f"no {MANIFEST_NAME} under {root}")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))

    truth: dict[str, dict] = {}
    truth_path = root / TRUTH_NAME
    if with_truth and truth_path.exists():
        truth = json.loads(truth_path.read_text(encoding="utf-8"))

    corpus = SyntheticCorpus(seed=int(manifest.get("seed", 0)))
    for entry in manifest["documents"]:
        text = (root / DOCUMENTS_DIR / entry["file"]).read_text(
            encoding="utf-8")
        lines = text.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        document = RawDocument(
            document_id=entry["document_id"],
            manufacturer=entry["manufacturer"],
            kind=entry["kind"],
            lines=lines,
        )
        sidecar = truth.get(entry["document_id"], {})
        document.truth_disengagements = [
            DisengagementRecord.from_dict(d)
            for d in sidecar.get("disengagements", [])]
        document.truth_mileage = [
            MonthlyMileage.from_dict(m)
            for m in sidecar.get("mileage", [])]
        document.truth_accidents = [
            AccidentRecord.from_dict(a)
            for a in sidecar.get("accidents", [])]
        corpus.documents.append(document)
    return corpus
