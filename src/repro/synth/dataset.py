"""Top-level synthetic corpus assembly.

``generate_corpus(seed)`` produces the full Stage I input: one
disengagement report document per (manufacturer, reporting period) plus
one OL-316 document per accident, with ground truth retained
out-of-band for evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..calibration.manufacturers import MANUFACTURERS, PERIODS, ReportPeriod
from ..parsing.records import (
    AccidentRecord,
    DisengagementRecord,
    MonthlyMileage,
)
from ..rng import DEFAULT_SEED, child_generator
from ..units import month_key, months_between
from .accidents import synthesize_accidents
from .events import synthesize_disengagements
from .fleet import build_roster
from .mileage import build_monthly_plan
from .reports import (
    RawDocument,
    render_accident_document,
    render_disengagement_document,
)


@dataclass
class SyntheticCorpus:
    """The complete synthetic Stage I corpus."""

    seed: int
    documents: list[RawDocument] = field(default_factory=list)

    @property
    def disengagement_documents(self) -> list[RawDocument]:
        """Annual disengagement reports."""
        return [d for d in self.documents if d.kind == "disengagement"]

    @property
    def accident_documents(self) -> list[RawDocument]:
        """OL-316 accident reports."""
        return [d for d in self.documents if d.kind == "accident"]

    def truth_disengagements(self) -> list[DisengagementRecord]:
        """All ground-truth disengagement records."""
        return [r for d in self.documents for r in d.truth_disengagements]

    def truth_accidents(self) -> list[AccidentRecord]:
        """All ground-truth accident records."""
        return [r for d in self.documents for r in d.truth_accidents]

    def truth_mileage(self) -> list[MonthlyMileage]:
        """All ground-truth mileage cells."""
        return [m for d in self.documents for m in d.truth_mileage]

    def manufacturers(self) -> list[str]:
        """Manufacturers present in the corpus."""
        return sorted({d.manufacturer for d in self.documents})


def _period_of_month(month: str) -> ReportPeriod:
    for period, (start, end) in PERIODS.items():
        if month in months_between(start, end):
            return period
    raise ValueError(f"month {month} outside both reporting periods")


def generate_corpus(seed: int = DEFAULT_SEED,
                    manufacturers: list[str] | None = None,
                    ) -> SyntheticCorpus:
    """Generate the full calibrated corpus.

    ``manufacturers`` restricts synthesis to a subset (useful for fast
    tests); the default covers all twelve manufacturers of Table I.
    """
    names = manufacturers if manufacturers is not None else list(
        MANUFACTURERS)
    corpus = SyntheticCorpus(seed=seed)
    accident_index = 0
    for name in names:
        rng = child_generator(seed, f"manufacturer:{name}")
        roster = build_roster(name, rng)
        plan = build_monthly_plan(name, roster, rng)
        events = synthesize_disengagements(name, plan, rng)
        for period in ReportPeriod:
            months = set(months_between(*PERIODS[period]))
            period_events = [e for e in events if e.month in months]
            period_mileage = [c for c in plan.cells if c.month in months]
            if not period_events and not period_mileage:
                continue
            corpus.documents.append(render_disengagement_document(
                name, period, period_events, period_mileage))
        for accident in synthesize_accidents(name, roster, rng):
            corpus.documents.append(render_accident_document(
                name, accident, accident_index))
            accident_index += 1
    return corpus


__all__ = ["SyntheticCorpus", "generate_corpus", "month_key"]
