"""Calibrated synthetic CA DMV corpus generator (Stage I substitute).

The paper's raw inputs are scanned DMV report PDFs, which are not
redistributable.  This package synthesizes a corpus with the same
structure and the same per-manufacturer marginals the paper publishes
(Tables I, IV-VIII; Figs. 4-12): fleet rosters, monthly mileage,
disengagement events with natural-language cause narratives, and
accident reports — rendered into the same kind of heterogeneous raw
report documents the real pipeline had to parse.
"""

from .fleet import FleetRoster, Vehicle, build_roster
from .mileage import MonthlyPlan, build_monthly_plan
from .events import synthesize_disengagements
from .accidents import synthesize_accidents
from .narratives import NarrativeGenerator
from .reports import render_accident_document, render_disengagement_document
from .dataset import SyntheticCorpus, generate_corpus

__all__ = [
    "FleetRoster",
    "Vehicle",
    "build_roster",
    "MonthlyPlan",
    "build_monthly_plan",
    "synthesize_disengagements",
    "synthesize_accidents",
    "NarrativeGenerator",
    "render_accident_document",
    "render_disengagement_document",
    "SyntheticCorpus",
    "generate_corpus",
]
