"""Accident (OL-316) report synthesis.

Each manufacturer's Table I accident counts are realized as dated
accident records with collision speeds drawn from the calibrated
exponential models (Fig. 12), urban-intersection locations, collision
types, and narrative descriptions in the style of the two case studies.
The DMV redacted vehicle identification in part of the real corpus;
we reproduce that with a configurable redaction probability.
"""

from __future__ import annotations

import calendar
from datetime import date

import numpy as np

from ..calibration.accidents import (
    COLLISION_TYPE_WEIGHTS,
    COLLISION_TYPES,
    INTERSECTION_STREETS,
    SPEED_MODEL,
)
from ..calibration.manufacturers import MANUFACTURERS, PERIODS, ReportPeriod
from ..parsing.records import AccidentRecord
from ..units import month_key
from .fleet import FleetRoster

#: Probability that the DMV redacts vehicle identification.
REDACTION_PROBABILITY = 0.4

#: Probability that the driver disengaged before the collision (an
#: artifact of safety-driver training the paper calls out).
PRE_COLLISION_DISENGAGE_PROBABILITY = 0.45

_NARRATIVES_BY_TYPE: dict[str, tuple[str, ...]] = {
    "rear-end": (
        "The AV was in autonomous mode, decelerating to yield, when a "
        "vehicle approaching from behind collided with the rear of "
        "the AV.",
        "While stopped at the intersection the AV was struck from "
        "behind by a manual vehicle whose driver misjudged the AV's "
        "movement.",
        "The AV came to a stop for a pedestrian; the following vehicle "
        "did not stop in time and made contact with the AV's rear "
        "bumper.",
    ),
    "side-swipe": (
        "A vehicle changing lanes made contact with the side of the AV "
        "while the AV was proceeding straight in its lane.",
        "The AV was side-swiped by a bus passing on the left as the AV "
        "hugged the right side of the lane.",
        "During a lane change by the other vehicle, its mirror "
        "contacted the AV's front quarter panel.",
    ),
    "broadside": (
        "A vehicle ran the red light and struck the AV broadside while "
        "the AV was crossing the intersection.",
        "The AV was struck on the passenger side by a vehicle that "
        "failed to yield at the intersection.",
    ),
    "object": (
        "The AV made contact with a stationary object at low speed "
        "while maneuvering in a parking area.",
        "The AV contacted a traffic cone that had fallen into the "
        "travel lane.",
    ),
}


def _truncated_exponential(scale: float, upper: float,
                           rng: np.random.Generator) -> float:
    """Sample Exp(scale) truncated to [0, upper]."""
    while True:
        value = rng.exponential(scale)
        if value <= upper:
            return value


def _sample_location(rng: np.random.Generator) -> str:
    streets = rng.choice(
        len(INTERSECTION_STREETS), size=2, replace=False)
    first = INTERSECTION_STREETS[int(streets[0])]
    second = INTERSECTION_STREETS[int(streets[1])]
    return f"{first} and {second}, Mountain View, CA"


def _sample_date(period: ReportPeriod, rng: np.random.Generator) -> date:
    start, end = PERIODS[period]
    months = ((end.year - start.year) * 12 + end.month - start.month) + 1
    offset = int(rng.integers(0, months))
    year = start.year + (start.month - 1 + offset) // 12
    month = (start.month - 1 + offset) % 12 + 1
    last = calendar.monthrange(year, month)[1]
    return date(year, month, int(rng.integers(1, last + 1)))


def synthesize_accidents(manufacturer_name: str, roster: FleetRoster,
                         rng: np.random.Generator) -> list[AccidentRecord]:
    """Synthesize all accident records for one manufacturer."""
    manufacturer = MANUFACTURERS[manufacturer_name]
    records: list[AccidentRecord] = []
    for period in ReportPeriod:
        count = manufacturer.stats(period).accidents or 0
        vehicles = roster.vehicles(period)
        for _ in range(count):
            collision_type = COLLISION_TYPES[int(rng.choice(
                len(COLLISION_TYPES), p=COLLISION_TYPE_WEIGHTS))]
            av_speed = _truncated_exponential(
                SPEED_MODEL.av_scale, SPEED_MODEL.max_av_speed, rng)
            if collision_type == "object":
                other_speed = 0.0
            else:
                relative = _truncated_exponential(
                    SPEED_MODEL.relative_scale, SPEED_MODEL.max_mv_speed,
                    rng)
                direction = 1.0 if rng.random() < 0.7 else -1.0
                other_speed = float(np.clip(
                    av_speed + direction * relative, 0.0,
                    SPEED_MODEL.max_mv_speed))
            narratives = _NARRATIVES_BY_TYPE[collision_type]
            redacted = bool(rng.random() < REDACTION_PROBABILITY)
            vehicle_id = None
            if vehicles and not redacted:
                vehicle_id = vehicles[
                    int(rng.integers(len(vehicles)))].vehicle_id
            event_date = _sample_date(period, rng)
            records.append(AccidentRecord(
                manufacturer=manufacturer_name,
                event_date=event_date,
                month=month_key(event_date),
                location=_sample_location(rng),
                autonomous_at_collision=bool(rng.random() < 0.7),
                disengaged_before_collision=bool(
                    rng.random() < PRE_COLLISION_DISENGAGE_PROBABILITY),
                av_speed_mph=round(float(av_speed), 1),
                other_speed_mph=round(float(other_speed), 1),
                collision_type=collision_type,
                injuries=False,
                redacted=redacted,
                vehicle_id=vehicle_id,
                description=str(rng.choice(list(narratives))),
            ))
    records.sort(key=lambda r: r.event_date or date.min)
    return records
