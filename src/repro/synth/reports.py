"""Rendering canonical records into raw per-manufacturer report text.

The real DMV corpus is a patchwork: every manufacturer invented its own
schema, separator style, date format, and level of detail (Table II).
This module reproduces that heterogeneity: one renderer per
manufacturer, each emitting a multi-section text document (header,
monthly mileage section, disengagement table).  The parsing package
mirrors these formats; the OCR substrate sits in between.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date

from ..calibration.manufacturers import PERIODS, ReportPeriod
from ..errors import SynthesisError
from ..parsing.records import (
    AccidentRecord,
    DisengagementRecord,
    MonthlyMileage,
)
from ..taxonomy import Modality

_MONTH_ABBR = ("Jan", "Feb", "Mar", "Apr", "May", "Jun",
               "Jul", "Aug", "Sep", "Oct", "Nov", "Dec")


@dataclass
class RawDocument:
    """One rendered raw report plus its out-of-band ground truth.

    ``lines`` is what the OCR/parsing pipeline sees; the ``truth_*``
    fields are the canonical records the renderer consumed, retained
    only so evaluation can score the recovered records.
    """

    document_id: str
    manufacturer: str
    kind: str  # "disengagement" or "accident"
    lines: list[str] = field(default_factory=list)
    truth_disengagements: list[DisengagementRecord] = field(
        default_factory=list)
    truth_mileage: list[MonthlyMileage] = field(default_factory=list)
    truth_accidents: list[AccidentRecord] = field(default_factory=list)

    @property
    def text(self) -> str:
        """Full document text."""
        return "\n".join(self.lines)


def _fmt_month_abbr(month: str) -> str:
    """``2016-05`` -> ``May-16`` (Waymo's month style)."""
    year, mon = int(month[:4]), int(month[5:7])
    return f"{_MONTH_ABBR[mon - 1]}-{year % 100:02d}"


def _fmt_time_12h(tod: tuple[int, int, int]) -> str:
    hour, minute, _ = tod
    suffix = "AM" if hour < 12 else "PM"
    display = hour % 12 or 12
    return f"{display}:{minute:02d} {suffix}"


def _fmt_time_24h(tod: tuple[int, int, int]) -> str:
    return f"{tod[0]:02d}:{tod[1]:02d}:{tod[2]:02d}"


def _fmt_reaction(value: float | None, style: str) -> str:
    if value is None:
        return ""
    if style == "sec":
        return f"{value:g} sec"
    if style == "s":
        return f"{value:g} s"
    return f"{value:g}"


def _modality_word(modality: Modality | None) -> str:
    if modality is Modality.AUTOMATIC:
        return "Auto"
    if modality is Modality.MANUAL:
        return "Manual"
    if modality is Modality.PLANNED:
        return "Planned"
    return "Unknown"


def _require(record: DisengagementRecord, *fields: str) -> None:
    for name in fields:
        if getattr(record, name) is None:
            raise SynthesisError(
                f"{record.manufacturer} renderer needs {name!r} but the "
                "record lacks it")


# ---------------------------------------------------------------------------
# Per-manufacturer disengagement-row renderers.
# ---------------------------------------------------------------------------

def _render_nissan(r: DisengagementRecord) -> str:
    _require(r, "event_date", "time_of_day", "vehicle_id")
    d = r.event_date
    parts = [
        f"{d.month}/{d.day}/{d.year % 100:02d}",
        _fmt_time_12h(r.time_of_day),
        r.vehicle_id or "",
        _modality_word(r.modality),
        r.description,
        r.road_type or "unknown road",
        r.weather or "Unknown",
    ]
    if r.reaction_time_s is not None:
        parts.append(_fmt_reaction(r.reaction_time_s, "s"))
    return " — ".join(parts)


def _render_waymo(r: DisengagementRecord) -> str:
    parts = [
        _fmt_month_abbr(r.month),
        (r.road_type or "unknown road").title(),
        _modality_word(r.modality),
        "Safe Operation",
        r.description,
    ]
    if r.reaction_time_s is not None:
        parts.append(f"reaction {_fmt_reaction(r.reaction_time_s, 's')}")
    if r.vehicle_id is not None:
        parts.append(f"car {r.vehicle_id}")
    return " — ".join(parts)


def _render_volkswagen(r: DisengagementRecord) -> str:
    _require(r, "event_date", "time_of_day")
    d = r.event_date
    parts = [
        f"{d.month:02d}/{d.day:02d}/{d.year % 100:02d}",
        _fmt_time_24h(r.time_of_day),
        "Takeover-Request",
        r.description,
    ]
    if r.reaction_time_s is not None:
        parts.append(
            f"reaction time: {_fmt_reaction(r.reaction_time_s, 's')}")
    return " — ".join(parts)


def _render_benz(r: DisengagementRecord) -> str:
    _require(r, "event_date", "time_of_day", "vehicle_id")
    d = r.event_date
    initiator = ("Driver" if r.modality is Modality.MANUAL else "System")
    fields = [
        f"Date: {d.month:02d}/{d.day:02d}/{d.year}",
        f"Time: {r.time_of_day[0]:02d}:{r.time_of_day[1]:02d}",
        f"Vehicle: {r.vehicle_id}",
        f"Initiator: {initiator}",
        f"Cause: {r.description}",
        f"Road: {r.road_type or 'unknown'}",
        f"Weather: {r.weather or 'Unknown'}",
    ]
    if r.reaction_time_s is not None:
        fields.append(
            f"Reaction: {_fmt_reaction(r.reaction_time_s, 'sec')}")
    return "; ".join(fields)


def _render_bosch(r: DisengagementRecord) -> str:
    _require(r, "event_date", "vehicle_id")
    d = r.event_date
    return " | ".join([
        d.isoformat(),
        r.vehicle_id or "",
        "planned test",
        r.description,
        r.road_type or "unknown",
        r.weather or "Unknown",
    ])


def _render_gmcruise(r: DisengagementRecord) -> str:
    _require(r, "event_date")
    return ",".join([
        r.event_date.isoformat(),
        f'"{r.description}"',
        "planned",
    ])


def _render_delphi(r: DisengagementRecord) -> str:
    _require(r, "event_date", "time_of_day", "vehicle_id")
    d = r.event_date
    rt = "" if r.reaction_time_s is None else f"{r.reaction_time_s:g}"
    return ",".join([
        f"{d.month:02d}/{d.day:02d}/{d.year}",
        _fmt_time_24h(r.time_of_day),
        r.vehicle_id or "",
        _modality_word(r.modality).lower(),
        f'"{r.description}"',
        r.road_type or "",
        r.weather or "",
        rt,
    ])


def _render_tesla(r: DisengagementRecord) -> str:
    _require(r, "event_date", "time_of_day")
    d = r.event_date
    parts = [
        f"{d.month}/{d.day}/{d.year % 100:02d} "
        f"{r.time_of_day[0]:02d}:{r.time_of_day[1]:02d}",
        _modality_word(r.modality),
        r.description,
    ]
    if r.reaction_time_s is not None:
        parts.append(f"rt {r.reaction_time_s:g}s")
    return " - ".join(parts)


_ROW_RENDERERS = {
    "Nissan": _render_nissan,
    "Waymo": _render_waymo,
    "Volkswagen": _render_volkswagen,
    "Mercedes-Benz": _render_benz,
    "Bosch": _render_bosch,
    "GMCruise": _render_gmcruise,
    "Delphi": _render_delphi,
    "Tesla": _render_tesla,
}

#: Generic pipe-separated fallback used for manufacturers without a
#: bespoke format (Ford, BMW, Honda, Uber ATC).
def _render_generic(r: DisengagementRecord) -> str:
    d = r.event_date
    date_text = d.isoformat() if d else r.month
    return " | ".join([
        date_text,
        r.vehicle_id or "unknown vehicle",
        _modality_word(r.modality),
        r.description,
    ])


# ---------------------------------------------------------------------------
# Mileage-section renderers.
# ---------------------------------------------------------------------------

def _render_mileage_line(manufacturer: str, cell: MonthlyMileage) -> str:
    if manufacturer == "Waymo":
        return (f"Autonomous miles {_fmt_month_abbr(cell.month)} "
                f"car {cell.vehicle_id}: {cell.miles:.1f}")
    if manufacturer == "Delphi":
        return f"{cell.month},{cell.vehicle_id},{cell.miles:.1f}"
    if manufacturer == "Mercedes-Benz":
        return (f"Month: {cell.month}; Vehicle: {cell.vehicle_id}; "
                f"Autonomous km: {cell.miles / 0.621371:.1f}")
    return f"MILES {cell.month} {cell.vehicle_id} {cell.miles:.2f}"


# ---------------------------------------------------------------------------
# Document assembly.
# ---------------------------------------------------------------------------

def render_disengagement_document(
        manufacturer: str, period: ReportPeriod,
        records: list[DisengagementRecord],
        mileage: list[MonthlyMileage]) -> RawDocument:
    """Assemble one manufacturer's annual disengagement report."""
    start, end = PERIODS[period]
    doc_id = f"{manufacturer}-{period.value}-disengagements"
    doc = RawDocument(document_id=doc_id, manufacturer=manufacturer,
                      kind="disengagement")
    doc.lines.append(
        "REPORT OF AUTONOMOUS VEHICLE DISENGAGEMENTS")
    doc.lines.append(f"Manufacturer: {manufacturer}")
    doc.lines.append(
        f"Reporting period: {start.isoformat()} to {end.isoformat()}")
    doc.lines.append("")
    doc.lines.append("SECTION 1: AUTONOMOUS MILES")
    for cell in mileage:
        doc.lines.append(_render_mileage_line(manufacturer, cell))
        doc.truth_mileage.append(cell)
    doc.lines.append("")
    doc.lines.append("SECTION 2: DISENGAGEMENT EVENTS")
    renderer = _ROW_RENDERERS.get(manufacturer, _render_generic)
    for record in records:
        line_no = len(doc.lines)
        record.source_document = doc_id
        record.source_line = line_no
        doc.lines.append(renderer(record))
        doc.truth_disengagements.append(record)
    doc.lines.append("END OF REPORT")
    return doc


def render_accident_document(manufacturer: str,
                             record: AccidentRecord,
                             index: int) -> RawDocument:
    """Assemble one OL-316 accident report (one document per accident)."""
    doc_id = f"{manufacturer}-accident-{index:03d}"
    record.source_document = doc_id
    event_date: date | None = record.event_date
    date_text = (f"{event_date.month:02d}/{event_date.day:02d}/"
                 f"{event_date.year}") if event_date else "UNKNOWN"
    mode = "YES" if record.autonomous_at_collision else "NO"
    vehicle = "[REDACTED]" if record.redacted else (
        record.vehicle_id or "unknown")
    description = record.description
    if record.disengaged_before_collision:
        description += (" The test driver disengaged autonomous mode "
                        "prior to the collision.")
    lines = [
        "STATE OF CALIFORNIA",
        "REPORT OF TRAFFIC ACCIDENT INVOLVING AN AUTONOMOUS VEHICLE "
        "(OL 316)",
        f"Manufacturer: {manufacturer}",
        f"Date of Accident: {date_text}",
        f"Location: {record.location or 'UNKNOWN'}",
        f"Vehicle: {vehicle}",
        f"Autonomous Mode at Time of Collision: {mode}",
        f"AV Speed: {record.av_speed_mph:g} MPH"
        if record.av_speed_mph is not None else "AV Speed: UNKNOWN",
        f"Other Vehicle Speed: {record.other_speed_mph:g} MPH"
        if record.other_speed_mph is not None
        else "Other Vehicle Speed: UNKNOWN",
        f"Collision Type: {record.collision_type or 'unknown'}",
        f"Injuries: {'YES' if record.injuries else 'NONE'}",
        f"Description: {description}",
    ]
    return RawDocument(
        document_id=doc_id, manufacturer=manufacturer, kind="accident",
        lines=lines, truth_accidents=[record])


__all__ = [
    "RawDocument",
    "render_disengagement_document",
    "render_accident_document",
]
