"""Disengagement event synthesis.

For each manufacturer and reporting period, allocates the exact Table I
disengagement total across months with weights following the calibrated
DPM-vs-cumulative-miles trend, assigns each event to a vehicle in
proportion to that vehicle's monthly mileage, and populates every
canonical field: date/time, modality, ground-truth fault tag, cause
narrative, road type, weather, and driver reaction time.
"""

from __future__ import annotations

import calendar
from datetime import date

import numpy as np
from scipy import stats as sstats

from ..calibration.fault_model import fault_mixture
from ..calibration.manufacturers import MANUFACTURERS, ReportPeriod
from ..calibration.modality import modality_mixture
from ..calibration.reaction_times import reaction_time_model
from ..calibration.roads import (
    ROAD_TYPE_SHARES,
    WEATHER_CONDITIONS,
    WEATHER_WEIGHTS,
)
from ..calibration.trends import dpm_trend
from ..parsing.records import DisengagementRecord
from ..taxonomy import FaultTag, Modality
from .mileage import MonthlyPlan, _period_months
from .narratives import NarrativeGenerator


def _month_event_counts(total: int, months: list[str],
                        miles_by_month: dict[str, float],
                        cumulative: dict[str, float], slope: float,
                        sigma: float,
                        rng: np.random.Generator) -> dict[str, int]:
    """Multinomially allocate ``total`` events across ``months``.

    Weights are ``miles * cumulative_miles**slope`` with lognormal
    noise, so the realized monthly DPM follows the calibrated power-law
    trend while the period total matches Table I exactly.
    """
    active = [m for m in months if miles_by_month.get(m, 0.0) > 0]
    if not active or total <= 0:
        return {}
    weights = np.array([
        miles_by_month[m] * max(cumulative[m], 1.0) ** slope
        * rng.lognormal(0.0, sigma)
        for m in active])
    weights = weights / weights.sum()
    counts = rng.multinomial(total, weights)
    return {m: int(c) for m, c in zip(active, counts) if c > 0}


def _sample_day(month: str, rng: np.random.Generator) -> date:
    """Random day within a ``YYYY-MM`` month."""
    year, mon = int(month[:4]), int(month[5:7])
    last = calendar.monthrange(year, mon)[1]
    return date(year, mon, int(rng.integers(1, last + 1)))


def _sample_time(rng: np.random.Generator) -> tuple[int, int, int]:
    """Random daytime-biased wall-clock time (testing is mostly diurnal)."""
    hour = int(np.clip(rng.normal(13.0, 3.5), 0, 23))
    return hour, int(rng.integers(0, 60)), int(rng.integers(0, 60))


def _sample_reaction_time(manufacturer: str, cumulative_miles: float,
                          rng: np.random.Generator) -> float | None:
    """Draw a reaction time (seconds) if the manufacturer reports them."""
    model = reaction_time_model(manufacturer)
    if model is None:
        return None
    value = float(sstats.exponweib.rvs(
        model.a, model.c, scale=model.scale, random_state=rng))
    if model.drift_per_log_mile:
        log_miles = np.log10(max(cumulative_miles, 1.0))
        value += model.drift_per_log_mile * (
            log_miles - model.drift_reference_log_miles)
    return max(round(value, 2), 0.01)


def synthesize_disengagements(manufacturer_name: str, plan: MonthlyPlan,
                              rng: np.random.Generator,
                              ) -> list[DisengagementRecord]:
    """Synthesize all disengagement records for one manufacturer."""
    manufacturer = MANUFACTURERS[manufacturer_name]
    trend = dpm_trend(manufacturer_name)
    faults = fault_mixture(manufacturer_name)
    modalities = modality_mixture(manufacturer_name)
    narrator = NarrativeGenerator(rng)

    fault_tags = list(faults.weights)
    fault_probs = np.array([faults.weights[t] for t in fault_tags])
    modality_values = list(modalities.weights)
    modality_probs = np.array(
        [modalities.weights[m] for m in modality_values])

    road_types = list(ROAD_TYPE_SHARES)
    road_probs = np.array([ROAD_TYPE_SHARES[r] for r in road_types])

    miles_by_month = plan.miles_by_month()
    cumulative = plan.cumulative_miles()

    records: list[DisengagementRecord] = []
    for period in ReportPeriod:
        stats = manufacturer.stats(period)
        total = stats.disengagements or 0
        if total <= 0:
            continue
        months = _period_months(period)
        counts = _month_event_counts(
            total, months, miles_by_month, cumulative,
            trend.slope, trend.sigma, rng)
        for month, count in counts.items():
            vehicles = [c for c in plan.cells if c.month == month]
            vehicle_ids = [c.vehicle_id for c in vehicles]
            vehicle_probs = np.array([c.miles for c in vehicles])
            vehicle_probs = vehicle_probs / vehicle_probs.sum()
            for _ in range(count):
                tag = fault_tags[
                    int(rng.choice(len(fault_tags), p=fault_probs))]
                modality = modality_values[
                    int(rng.choice(len(modality_values), p=modality_probs))]
                vehicle_id = vehicle_ids[
                    int(rng.choice(len(vehicle_ids), p=vehicle_probs))]
                event_date = _sample_day(month, rng)
                record = DisengagementRecord(
                    manufacturer=manufacturer_name,
                    month=month,
                    event_date=(
                        event_date if manufacturer.day_granularity else None),
                    time_of_day=(
                        _sample_time(rng)
                        if manufacturer.day_granularity else None),
                    vehicle_id=vehicle_id,
                    modality=modality,
                    road_type=(
                        str(road_types[int(rng.choice(
                            len(road_types), p=road_probs))])
                        if manufacturer.reports_conditions else None),
                    weather=(
                        str(rng.choice(
                            list(WEATHER_CONDITIONS), p=WEATHER_WEIGHTS))
                        if manufacturer.reports_conditions else None),
                    reaction_time_s=_sample_reaction_time(
                        manufacturer_name, cumulative[month], rng),
                    description=narrator.narrative(tag, modality),
                    truth_tag=tag,
                )
                records.append(record)

    _inject_reaction_outlier(manufacturer_name, records)
    records.sort(key=lambda r: (r.month, r.event_date or date(
        int(r.month[:4]), int(r.month[5:7]), 1)))
    return records


def _inject_reaction_outlier(manufacturer_name: str,
                             records: list[DisengagementRecord]) -> None:
    """Inject the calibrated extreme reaction time (VW's ~4 h report)."""
    model = reaction_time_model(manufacturer_name)
    if model is None or model.outlier_seconds is None or not records:
        return
    carrier = max(records, key=lambda r: r.reaction_time_s or 0.0)
    carrier.reaction_time_s = model.outlier_seconds


def planned_only(manufacturer_name: str) -> bool:
    """Whether all of a manufacturer's disengagements are planned tests."""
    return modality_mixture(manufacturer_name).all_planned


__all__ = [
    "synthesize_disengagements",
    "planned_only",
    "FaultTag",
    "Modality",
]
