"""Natural-language disengagement narratives, by fault tag.

Each synthesized disengagement carries a human-style cause description
of the kind Table II shows ("Software module froze. As a result driver
safely disengaged and resumed manual control.").  Templates are grouped
by ground-truth fault tag; each template's core phrase carries the
signal the NLP dictionary must learn, while shared prefixes/suffixes
("driver safely disengaged...") provide realistic distractor text.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..taxonomy import FaultTag, Modality

#: Objects the recognition system can fail on.
_PERCEPTION_OBJECTS = (
    "the lead vehicle", "a pedestrian in the crosswalk", "a cyclist",
    "the traffic light state", "lane markings", "a stopped bus",
    "a merging vehicle", "cross traffic", "a traffic cone",
    "an overhead signal",
)

#: Maneuvers the planner can botch.
_PLANNER_SITUATIONS = (
    "an unprotected left turn", "a lane change on the freeway",
    "merging at the on-ramp", "a four-way stop", "a tight roundabout",
    "a double-parked truck", "yielding at the crosswalk",
    "an occluded intersection",
)

#: Environment surprises.
_ENVIRONMENT_EVENTS = (
    "a construction zone", "an emergency vehicle approaching",
    "a recklessly behaving road user", "heavy rain", "sun glare",
    "debris on the roadway", "an unexpected lane closure",
    "a vehicle running a red light", "an accident blocking the lane",
)

_SENSOR_NAMES = ("LIDAR", "RADAR", "GPS", "front camera", "SONAR",
                 "wheel-speed sensor", "IMU")

_SOFTWARE_MODULES = (
    "perception stack", "localization module", "logging daemon",
    "map service", "trajectory server", "diagnostics process",
    "vehicle interface process",
)


@dataclass(frozen=True)
class Template:
    """One narrative template; ``{x}`` slots filled from ``choices``."""

    text: str
    choices: tuple[str, ...] = ()

    def render(self, rng: np.random.Generator) -> str:
        """Fill the slot (if any) with a random choice."""
        if "{x}" in self.text and self.choices:
            return self.text.replace(
                "{x}", str(rng.choice(list(self.choices))))
        return self.text


#: Narrative templates per ground-truth fault tag.  The leading phrase
#: is the discriminative core; tails are shared boilerplate.
TEMPLATES: dict[FaultTag, tuple[Template, ...]] = {
    FaultTag.ENVIRONMENT: (
        Template("Disengage for {x}", _ENVIRONMENT_EVENTS),
        Template("Encountered {x} ahead of the vehicle",
                 _ENVIRONMENT_EVENTS),
        Template("Sudden change in environment: {x}", _ENVIRONMENT_EVENTS),
        Template("External factor: {x} required manual takeover",
                 _ENVIRONMENT_EVENTS),
        Template("Weather conditions degraded beyond operating envelope"),
    ),
    FaultTag.COMPUTER_SYSTEM: (
        Template("Processor overload on the compute platform"),
        Template("Compute unit exceeded thermal limits"),
        Template("Memory exhaustion detected on the onboard computer"),
        Template("ECU reported an internal hardware fault"),
        Template("Compute platform rebooted unexpectedly"),
        Template("Disk subsystem error on the logging computer"),
    ),
    FaultTag.RECOGNITION_SYSTEM: (
        Template("The AV didn't see {x}", _PERCEPTION_OBJECTS),
        Template("Perception failed to detect {x}", _PERCEPTION_OBJECTS),
        Template("Recognition system misclassified {x}",
                 _PERCEPTION_OBJECTS),
        Template("False obstacle detection forced a hard brake"),
        Template("Failed to track {x} through the intersection",
                 _PERCEPTION_OBJECTS),
        Template("Perception system reported low confidence on {x}",
                 _PERCEPTION_OBJECTS),
    ),
    FaultTag.PLANNER: (
        Template("Planner failed to anticipate the other driver's "
                 "behavior during {x}", _PLANNER_SITUATIONS),
        Template("Improper motion planning during {x}",
                 _PLANNER_SITUATIONS),
        Template("Planner generated an infeasible trajectory for {x}",
                 _PLANNER_SITUATIONS),
        Template("Vehicle hesitated in {x} and blocked traffic",
                 _PLANNER_SITUATIONS),
        Template("Unwanted maneuver planned during {x}",
                 _PLANNER_SITUATIONS),
        Template("Path planner selected an incorrect lane for {x}",
                 _PLANNER_SITUATIONS),
    ),
    FaultTag.SENSOR: (
        Template("{x} failed to localize in time", _SENSOR_NAMES),
        Template("{x} signal lost", _SENSOR_NAMES),
        Template("{x} returns degraded below threshold", _SENSOR_NAMES),
        Template("Calibration drift detected on the {x}", _SENSOR_NAMES),
        Template("{x} dropout during autonomous operation", _SENSOR_NAMES),
    ),
    FaultTag.NETWORK: (
        Template("Data rate too high to be handled by the network"),
        Template("CAN bus saturation between sensor and compute"),
        Template("Message latency exceeded the network budget"),
        Template("Dropped packets on the vehicle network"),
        Template("Network switch fault interrupted sensor streams"),
    ),
    FaultTag.DESIGN_BUG: (
        Template("AV was not designed to handle {x}", _PLANNER_SITUATIONS),
        Template("Situation outside the operational design domain: {x}",
                 _PLANNER_SITUATIONS),
        Template("Unforeseen situation not covered by the design: {x}",
                 _PLANNER_SITUATIONS),
        Template("Feature gap: system has no behavior for {x}",
                 _PLANNER_SITUATIONS),
    ),
    FaultTag.SOFTWARE: (
        Template("Software module froze"),
        Template("Software crash in the {x}", _SOFTWARE_MODULES),
        Template("The {x} terminated unexpectedly", _SOFTWARE_MODULES),
        Template("Software bug triggered a fault in the {x}",
                 _SOFTWARE_MODULES),
        Template("Software hang detected in the {x}", _SOFTWARE_MODULES),
        Template("Unhandled exception logged by the {x}",
                 _SOFTWARE_MODULES),
    ),
    FaultTag.AV_CONTROLLER_UNRESPONSIVE: (
        Template("AV controller did not respond to commands"),
        Template("Actuation command timeout in the AV controller"),
        Template("Steering command was not executed by the controller"),
        Template("Controller stopped acknowledging actuation requests"),
    ),
    FaultTag.AV_CONTROLLER_DECISION: (
        Template("AV controller made a wrong deceleration decision"),
        Template("Controller issued an incorrect throttle decision"),
        Template("Wrong control decision at low speed"),
        Template("Controller chose an incorrect gap for the merge"),
    ),
    FaultTag.HANG_CRASH: (
        Template("Takeover-Request — watchdog error"),
        Template("Watchdog timer expired on the autonomy computer"),
        Template("Watchdog error forced a takeover request"),
        Template("System watchdog detected a stalled control cycle"),
    ),
    FaultTag.INCORRECT_BEHAVIOR_PREDICTION: (
        Template("Incorrect behavior prediction"),
        Template("Incorrect behavior prediction of an adjacent vehicle"),
        Template("Predicted cut-in did not occur; prediction incorrect"),
        Template("Behavior prediction missed a vehicle's sudden stop"),
    ),
    FaultTag.UNKNOWN: (
        Template("Driver disengaged"),
        Template("Disengagement"),
        Template("Manual takeover"),
        Template("Disengaged autonomous mode"),
        Template("Driver elected to take control"),
    ),
}

#: Boilerplate tails appended to some narratives (distractor text the
#: tagger must ignore).
_TAILS = (
    "As a result driver safely disengaged and resumed manual control.",
    "Driver safely disengaged and resumed manual control.",
    "Test driver took immediate manual control.",
    "Safe disengagement; no contact.",
    "",
    "",
)

#: Modality-specific lead-ins.
_MODALITY_LEADS: dict[Modality, tuple[str, ...]] = {
    Modality.AUTOMATIC: ("Auto disengagement: ", "Takeover-Request — ", ""),
    Modality.MANUAL: ("Driver initiated: ", "Precautionary takeover: ", ""),
    Modality.PLANNED: ("Planned test: ", "Planned fault injection: "),
}


class NarrativeGenerator:
    """Render ground-truth fault tags into natural-language narratives."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def narrative(self, tag: FaultTag,
                  modality: Modality | None = None) -> str:
        """Generate one cause description for ``tag``."""
        templates = TEMPLATES[tag]
        template = templates[int(self._rng.integers(len(templates)))]
        core = template.render(self._rng)
        lead = ""
        if modality is not None and self._rng.random() < 0.5:
            leads = _MODALITY_LEADS[modality]
            lead = leads[int(self._rng.integers(len(leads)))]
        tail = _TAILS[int(self._rng.integers(len(_TAILS)))]
        text = f"{lead}{core}"
        if tail:
            joiner = ". " if not text.endswith((".", "—", "-")) else " "
            text = f"{text}{joiner}{tail}"
        return text

    def vocabulary(self) -> dict[FaultTag, list[str]]:
        """All core template texts per tag (slots unexpanded).

        Used by tests and by the seeded failure-dictionary builder.
        """
        return {tag: [t.text for t in templates]
                for tag, templates in TEMPLATES.items()}
