"""Fleet rosters: the vehicles each manufacturer tested in each period.

Table I gives fleet sizes per reporting period (dashes where a
manufacturer did not disclose them).  Vehicles carry fleet-local names
in the styles seen in the real reports ("Leaf #1 (Alfa)" for Nissan,
VIN suffixes for others) so the per-manufacturer report renderers can
reproduce the real formats.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..calibration.manufacturers import (
    MANUFACTURERS,
    Manufacturer,
    ReportPeriod,
)
from ..errors import SynthesisError

_VIN_ALPHABET = "ABCDEFGHJKLMNPRSTUVWXYZ0123456789"  # no I, O, Q per spec

#: Fleet sizes assumed for manufacturers whose Table I row shows a dash
#: but who reported miles (we must place those miles on some fleet).
_ASSUMED_FLEET_SIZES: dict[tuple[str, ReportPeriod], int] = {
    ("GMCruise", ReportPeriod.P2015_2016): 2,
    ("GMCruise", ReportPeriod.P2016_2017): 10,
    ("Mercedes-Benz", ReportPeriod.P2016_2017): 2,
    ("Volkswagen", ReportPeriod.P2016_2017): 0,
    ("BMW", ReportPeriod.P2016_2017): 1,
    ("Uber ATC", ReportPeriod.P2016_2017): 1,
}

_NICKNAMES = (
    "Alfa", "Bravo", "Charlie", "Delta", "Echo", "Foxtrot", "Golf",
    "Hotel", "India", "Juliett", "Kilo", "Lima", "Mike", "November",
    "Oscar", "Papa", "Quebec", "Romeo", "Sierra", "Tango", "Uniform",
    "Victor", "Whiskey", "Xray", "Yankee", "Zulu",
)


@dataclass(frozen=True)
class Vehicle:
    """One test vehicle in a manufacturer's fleet."""

    manufacturer: str
    #: Stable fleet-local identifier, e.g. ``"Leaf #1 (Alfa)"`` or
    #: a VIN suffix like ``"...4T8R2"``.
    vehicle_id: str
    #: Full synthetic VIN (17 characters).
    vin: str
    #: First reporting period in which the vehicle was active.
    first_period: ReportPeriod


@dataclass
class FleetRoster:
    """All vehicles a manufacturer operated, by period."""

    manufacturer: str
    by_period: dict[ReportPeriod, list[Vehicle]]

    def vehicles(self, period: ReportPeriod) -> list[Vehicle]:
        """Vehicles active in ``period``."""
        return self.by_period.get(period, [])

    def all_vehicles(self) -> list[Vehicle]:
        """Every distinct vehicle across both periods."""
        seen: dict[str, Vehicle] = {}
        for vehicles in self.by_period.values():
            for vehicle in vehicles:
                seen.setdefault(vehicle.vehicle_id, vehicle)
        return list(seen.values())


def _synthesize_vin(rng: np.random.Generator) -> str:
    """Generate a 17-character synthetic VIN."""
    return "".join(
        _VIN_ALPHABET[i] for i in rng.integers(0, len(_VIN_ALPHABET), 17))


def _vehicle_label(manufacturer: str, index: int, vin: str) -> str:
    """Fleet-local vehicle label in the manufacturer's style."""
    if manufacturer == "Nissan":
        nickname = _NICKNAMES[index % len(_NICKNAMES)]
        return f"Leaf #{index + 1} ({nickname})"
    if manufacturer == "Waymo":
        return f"AV-{index + 1:03d}"
    if manufacturer == "Mercedes-Benz":
        return f"S500-{index + 1}"
    return f"...{vin[-5:]}"


def fleet_size(manufacturer: Manufacturer, period: ReportPeriod) -> int:
    """Fleet size for a period, applying assumptions for dashes."""
    stats = manufacturer.stats(period)
    if stats.cars is not None:
        return stats.cars
    if not stats.tested and stats.accidents in (None, 0):
        return 0
    assumed = _ASSUMED_FLEET_SIZES.get((manufacturer.name, period))
    if assumed is None:
        raise SynthesisError(
            f"{manufacturer.name} reported activity in {period} but no "
            "fleet size, and no assumption is registered")
    return assumed


def build_roster(manufacturer_name: str,
                 rng: np.random.Generator) -> FleetRoster:
    """Build the full two-period fleet roster for one manufacturer.

    Vehicles active in the first period carry over into the second;
    fleet growth adds new vehicles, and shrinkage retires the
    highest-indexed ones (real fleets rotate prototypes similarly).
    """
    manufacturer = MANUFACTURERS[manufacturer_name]
    by_period: dict[ReportPeriod, list[Vehicle]] = {}
    pool: list[Vehicle] = []
    for period in ReportPeriod:
        size = fleet_size(manufacturer, period)
        while len(pool) < size:
            vin = _synthesize_vin(rng)
            vehicle = Vehicle(
                manufacturer=manufacturer_name,
                vehicle_id=_vehicle_label(manufacturer_name, len(pool), vin),
                vin=vin,
                first_period=period,
            )
            pool.append(vehicle)
        by_period[period] = list(pool[:size])
    return FleetRoster(manufacturer=manufacturer_name, by_period=by_period)
