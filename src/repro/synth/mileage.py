"""Monthly autonomous-mileage plans.

Distributes each manufacturer's per-period Table I mileage total across
the period's months and the fleet's vehicles.  The monthly profile
grows geometrically (fleets ramp up over time) with multiplicative
noise; the per-vehicle split within a month is Dirichlet, so some
prototypes drive much more than others — matching the per-car DPM
spread the paper reports (Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..calibration.manufacturers import MANUFACTURERS, PERIODS, ReportPeriod
from ..calibration.trends import dpm_trend
from ..parsing.records import MonthlyMileage
from ..units import month_key, months_between
from .fleet import FleetRoster


@dataclass
class MonthlyPlan:
    """Per-(vehicle, month) mileage allocation for one manufacturer."""

    manufacturer: str
    #: Flat list of mileage cells; a vehicle absent in a month has none.
    cells: list[MonthlyMileage] = field(default_factory=list)

    def months(self) -> list[str]:
        """Sorted distinct months with any driving."""
        return sorted({cell.month for cell in self.cells})

    def miles_in_month(self, month: str) -> float:
        """Total manufacturer miles in ``month``."""
        return sum(c.miles for c in self.cells if c.month == month)

    def miles_by_month(self) -> dict[str, float]:
        """Month -> total miles."""
        totals: dict[str, float] = {}
        for cell in self.cells:
            totals[cell.month] = totals.get(cell.month, 0.0) + cell.miles
        return dict(sorted(totals.items()))

    def miles_by_vehicle(self) -> dict[str, float]:
        """Vehicle id -> total miles."""
        totals: dict[str, float] = {}
        for cell in self.cells:
            key = cell.vehicle_id or "?"
            totals[key] = totals.get(key, 0.0) + cell.miles
        return totals

    def cumulative_miles(self) -> dict[str, float]:
        """Month -> cumulative manufacturer miles through that month."""
        running = 0.0
        out: dict[str, float] = {}
        for month, miles in self.miles_by_month().items():
            running += miles
            out[month] = running
        return out

    @property
    def total_miles(self) -> float:
        """Total miles across the whole plan."""
        return sum(c.miles for c in self.cells)


def _period_months(period: ReportPeriod) -> list[str]:
    start, end = PERIODS[period]
    return months_between(start, end)


def _monthly_weights(n_months: int, growth: float,
                     rng: np.random.Generator) -> np.ndarray:
    """Geometric-growth monthly weights with multiplicative noise."""
    base = growth ** np.arange(n_months)
    noise = rng.lognormal(mean=0.0, sigma=0.15, size=n_months)
    weights = base * noise
    return weights / weights.sum()


def build_monthly_plan(manufacturer_name: str, roster: FleetRoster,
                       rng: np.random.Generator) -> MonthlyPlan:
    """Allocate Table I mileage across months and vehicles."""
    manufacturer = MANUFACTURERS[manufacturer_name]
    trend = dpm_trend(manufacturer_name)
    plan = MonthlyPlan(manufacturer=manufacturer_name)
    for period in ReportPeriod:
        stats = manufacturer.stats(period)
        total = stats.miles or 0.0
        vehicles = roster.vehicles(period)
        if total <= 0 or not vehicles:
            continue
        months = _period_months(period)
        month_weights = _monthly_weights(
            len(months), trend.mileage_growth, rng)
        #: Per-vehicle propensity: some prototypes drive far more.
        propensity = rng.dirichlet(np.full(len(vehicles), 2.0))
        for month, weight in zip(months, month_weights):
            month_total = total * weight
            #: Jitter the within-month split around the propensities.
            split = propensity * rng.lognormal(0.0, 0.2, len(vehicles))
            split = split / split.sum()
            for vehicle, share in zip(vehicles, split):
                miles = month_total * share
                if miles <= 0:
                    continue
                plan.cells.append(MonthlyMileage(
                    manufacturer=manufacturer_name,
                    month=month,
                    miles=float(miles),
                    vehicle_id=vehicle.vehicle_id,
                ))
    return plan


def month_of_period_start(period: ReportPeriod) -> str:
    """Canonical ``YYYY-MM`` key of a period's first month."""
    return month_key(PERIODS[period][0])
