"""One-command reproduction driver.

Runs the test suite, the full benchmark harness, regenerates
EXPERIMENTS.md, and leaves the rendered exhibits under
``benchmarks/output/``.

Usage::

    python scripts/run_all.py [--skip-tests] [--skip-benches]
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _run(label: str, command: list[str]) -> int:
    print(f"\n=== {label}: {' '.join(command)} ===", flush=True)
    return subprocess.call(command, cwd=ROOT)


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--skip-tests", action="store_true")
    parser.add_argument("--skip-benches", action="store_true")
    args = parser.parse_args()

    failures = 0
    if not args.skip_tests:
        failures += _run("tests", [
            sys.executable, "-m", "pytest", "tests/", "-q"])
    if not args.skip_benches:
        failures += _run("benchmarks", [
            sys.executable, "-m", "pytest", "benchmarks/",
            "--benchmark-only", "-q"])
    failures += _run("experiments", [
        sys.executable, "scripts/generate_experiments_md.py"])

    print()
    if failures:
        print(f"DONE WITH FAILURES ({failures} step(s) failed)")
        return 1
    print("DONE — exhibits in benchmarks/output/, comparison in "
          "EXPERIMENTS.md")
    return 0


if __name__ == "__main__":
    sys.exit(main())
